use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use freshtrack_clock::ThreadId;
use freshtrack_trace::{Event, EventId, EventKind, LockId, VarId};

use crate::counters::SkipCells;
use crate::{Counters, Detector, HoistedDecider, RaceReport};

/// A thread-safe façade that lets concurrently running application
/// threads feed events to a streaming [`Detector`] — the role
/// ThreadSanitizer's runtime plays for an instrumented process.
///
/// Events are globally ordered by their arrival at the internal mutex;
/// that order *is* the analyzed trace order, exactly as TSan's shadow
/// memory serializes the analysis of racing accesses. The mutex also
/// models the analysis serialization cost that the paper's Fig. 5
/// measures: the longer an engine's handlers run, the more the
/// application's own lock contention is amplified.
///
/// Callers use the operation shorthands ([`read`](OnlineDetector::read),
/// [`acquire`](OnlineDetector::acquire), …) from any thread, then call
/// [`finish`](OnlineDetector::finish) to retrieve the detector and
/// reports.
///
/// # The lock-free skip path
///
/// When the wrapped detector exposes a
/// [`hoisted_decider`](Detector::hoisted_decider), access events draw
/// their ticket from a plain atomic `fetch_add` *outside* the mutex,
/// the (pure) sampling decision is computed immediately, and
/// sampled-out accesses return after a striped atomic counter bump —
/// they never contend on the analysis mutex at all. This is sound
/// because a skipped access mutates no detector state: processing it in
/// any order relative to other events yields the same verdicts and, via
/// [`Detector::record_skipped_accesses`] at
/// [`finish`](OnlineDetector::finish), the same [`Counters`]. Events
/// that *are* analyzed still serialize through the mutex; causally
/// ordered events keep both ticket order and processing order, since a
/// later instrumentation call draws its ticket after the earlier call
/// returned (ARCHITECTURE.md invariant 10).
///
/// # Example
///
/// ```
/// use freshtrack_core::{DjitDetector, OnlineDetector};
/// use freshtrack_sampling::AlwaysSampler;
/// use std::sync::Arc;
///
/// let online = Arc::new(OnlineDetector::new(DjitDetector::new(AlwaysSampler::new())));
/// let handles: Vec<_> = (0..2)
///     .map(|t| {
///         let online = Arc::clone(&online);
///         std::thread::spawn(move || online.write(t, 0))
///     })
///     .collect();
/// for h in handles {
///     h.join().unwrap();
/// }
/// let (_, races) = Arc::try_unwrap(online).ok().unwrap().finish();
/// assert_eq!(races.len(), 1); // the two writes race
/// ```
pub struct OnlineDetector<D> {
    inner: Mutex<Inner<D>>,
    /// Ticket counter, drawn outside any lock (invariant 10).
    next_id: AtomicU64,
    /// The hoisted sampling decision, extracted once at construction.
    decider: Option<HoistedDecider>,
    /// Tallies for accesses the skip path rejected without locking.
    skip: SkipCells,
}

impl<D: std::fmt::Debug> std::fmt::Debug for OnlineDetector<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OnlineDetector")
            .field("inner", &self.inner)
            .field("next_id", &self.next_id)
            .field("hoisted", &self.decider.is_some())
            .finish_non_exhaustive()
    }
}

#[derive(Debug)]
struct Inner<D> {
    detector: D,
    reports: Vec<RaceReport>,
}

impl<D: Detector> OnlineDetector<D> {
    /// Wraps a streaming detector for concurrent use.
    pub fn new(detector: D) -> Self {
        let decider = detector.hoisted_decider();
        OnlineDetector {
            inner: Mutex::new(Inner {
                detector,
                reports: Vec::new(),
            }),
            next_id: AtomicU64::new(0),
            decider,
            skip: SkipCells::new(),
        }
    }

    /// Pre-sizes the wrapped detector's per-thread state for `n`
    /// application threads, so the event hot path never pays a clock
    /// grow (and its reallocation) while the serialization mutex is
    /// held. Call once before the workers start.
    pub fn reserve_threads(&self, n: usize) {
        self.inner
            .lock()
            .expect("detector mutex poisoned")
            .detector
            .reserve_threads(n);
    }

    /// Feeds one event; returns `true` if it was reported as racing.
    ///
    /// Sampled-out accesses take the lock-free skip path when the
    /// detector exposes a hoisted decider: ticket, decision, one
    /// striped counter bump — no mutex.
    pub fn on_event(&self, tid: u32, kind: EventKind) -> bool {
        let id = EventId::new(self.next_id.fetch_add(1, Ordering::Relaxed));
        let event = Event::new(ThreadId::new(tid), kind);
        // With a decider, accesses are decided here — once, outside the
        // lock — and admitted ones go through `process_admitted` so the
        // detector never re-derives the verdict under the mutex.
        let mut admitted = false;
        if let Some(decider) = &self.decider {
            match kind {
                EventKind::Read(_) => {
                    if !decider(id, event) {
                        self.skip.bump_read(tid);
                        return false;
                    }
                    admitted = true;
                }
                EventKind::Write(_) => {
                    if !decider(id, event) {
                        self.skip.bump_write(tid);
                        return false;
                    }
                    admitted = true;
                }
                _ => {}
            }
        }
        let mut inner = self.inner.lock().expect("detector mutex poisoned");
        let report = if admitted {
            inner.detector.process_admitted(id, event)
        } else {
            inner.detector.process(id, event)
        };
        if let Some(report) = report {
            inner.reports.push(report);
            true
        } else {
            false
        }
    }

    /// Records a read of variable `var` by thread `tid`.
    pub fn read(&self, tid: u32, var: u32) -> bool {
        self.on_event(tid, EventKind::Read(VarId::new(var)))
    }

    /// Records a write of variable `var` by thread `tid`.
    pub fn write(&self, tid: u32, var: u32) -> bool {
        self.on_event(tid, EventKind::Write(VarId::new(var)))
    }

    /// Records an acquire of lock `lock` by thread `tid`.
    pub fn acquire(&self, tid: u32, lock: u32) {
        self.on_event(tid, EventKind::Acquire(LockId::new(lock)));
    }

    /// Records a release of lock `lock` by thread `tid`.
    pub fn release(&self, tid: u32, lock: u32) {
        self.on_event(tid, EventKind::Release(LockId::new(lock)));
    }

    /// Drains a streaming [`EventSource`](freshtrack_trace::EventSource)
    /// through the façade, one event per mutex acquisition, returning
    /// the number of events fed — the façade twin of
    /// [`Detector::run_source`], for replaying a recorded trace into a
    /// *live* online detector (e.g. warming one up with a corpus
    /// prefix before application threads attach) without
    /// materializing it.
    ///
    /// Ticket order equals stream order when a single feeder drains
    /// the source, so the reports accumulated by
    /// [`finish`](OnlineDetector::finish) match what
    /// [`Detector::run_source`] would produce over the same stream
    /// (`feed_source_matches_run_source` pins this). Offline
    /// consumers that own their detector — the CLI `analyze` path,
    /// `rapid::run_engine_source` — use `run_source` directly.
    ///
    /// # Errors
    ///
    /// Propagates the first error the source reports; events fed before
    /// the error remain processed.
    pub fn feed_source(
        &self,
        source: &mut dyn freshtrack_trace::EventSource,
    ) -> Result<u64, freshtrack_trace::SourceError> {
        let mut fed = 0;
        while let Some(event) = source.next_event()? {
            self.on_event(event.tid.as_u32(), event.kind);
            fed += 1;
        }
        Ok(fed)
    }

    /// Number of events ticketed so far (skip-path accesses included).
    pub fn events_processed(&self) -> u64 {
        self.next_id.load(Ordering::Relaxed)
    }

    /// Races reported so far.
    pub fn race_count(&self) -> usize {
        self.inner
            .lock()
            .expect("detector mutex poisoned")
            .reports
            .len()
    }

    /// Consumes the façade, returning the detector and all reports.
    ///
    /// Reports are **strictly sorted by racing [`EventId`]**. Tickets
    /// are drawn outside the mutex, so two *concurrent* analyzed events
    /// can reach the mutex out of ticket order (causally ordered ones
    /// cannot — see invariant 10); the final sort restores the
    /// deterministic order
    /// [`ShardedOnlineDetector::finish`](crate::ShardedOnlineDetector::finish)
    /// produces by merging, which keeps the two ingestion paths
    /// directly comparable. Accesses the skip path rejected are folded
    /// into the detector's [`Counters`] here, bit-exactly with inline
    /// processing.
    pub fn finish(self) -> (D, Vec<RaceReport>) {
        let mut inner = self.inner.into_inner().expect("detector mutex poisoned");
        let (reads, writes) = self.skip.totals();
        if reads != 0 || writes != 0 {
            inner.detector.record_skipped_accesses(reads, writes);
        }
        inner.reports.sort_unstable_by_key(|r| r.event);
        debug_assert!(
            inner.reports.windows(2).all(|w| w[0].event < w[1].event),
            "reports must stay strictly sorted by EventId"
        );
        (inner.detector, inner.reports)
    }
}

/// The "Empty-TSan" baseline: a detector that observes events (paying
/// the instrumentation/serialization cost) but performs no analysis.
///
/// Used to separate instrumentation overhead from *algorithmic* overhead
/// — the paper's `AO(S) = latency(S) − latency(ET)`.
#[derive(Clone, Debug, Default)]
pub struct EmptyDetector {
    counters: Counters,
}

impl EmptyDetector {
    /// Creates the no-op detector.
    pub fn new() -> Self {
        EmptyDetector::default()
    }
}

impl Detector for EmptyDetector {
    fn process(&mut self, _id: EventId, event: Event) -> Option<RaceReport> {
        self.counters.events += 1;
        match event.kind {
            EventKind::Read(_) => self.counters.reads += 1,
            EventKind::Write(_) => self.counters.writes += 1,
            EventKind::Acquire(_) => self.counters.acquires += 1,
            EventKind::Release(_) => self.counters.releases += 1,
        }
        None
    }

    fn counters(&self) -> &Counters {
        &self.counters
    }

    fn name(&self) -> &'static str {
        "ET"
    }

    fn hoisted_decider(&self) -> Option<HoistedDecider> {
        // ET analyzes nothing, so every access is sampled-out: the
        // instrumentation-only baseline rides the same lock-free skip
        // path real samplers do.
        Some(Box::new(|_, _| false))
    }

    fn record_skipped_accesses(&mut self, reads: u64, writes: u64) {
        self.counters.fold_skipped_accesses(reads, writes);
    }
}

/// The (stateless) sync-plane half of [`EmptyDetector`]: counts
/// acquire/release observations, touches no clocks.
#[derive(Clone, Copy, Debug, Default)]
pub struct EmptySyncEngine;

impl crate::plane::SyncEngine for EmptySyncEngine {
    type View = ();

    fn ensure_thread(&mut self, _tid: ThreadId) {}

    fn acquire(&mut self, _tid: ThreadId, _lock: LockId, counters: &mut Counters) {
        counters.acquires += 1;
    }

    fn release(
        &mut self,
        _tid: ThreadId,
        _lock: LockId,
        _sampled_since_release: bool,
        counters: &mut Counters,
    ) {
        counters.releases += 1;
    }

    fn publish(&mut self, _tid: ThreadId) {}

    fn reserve_threads(&mut self, _n: usize) {}
}

/// The (stateless) access-plane half of [`EmptyDetector`]: counts
/// read/write observations, analyzes nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct EmptyAccessEngine;

impl crate::plane::AccessEngine for EmptyAccessEngine {
    fn decide(&self, _id: EventId, _event: Event) -> bool {
        false
    }

    fn access_sampled<W: crate::plane::ClockView>(
        &mut self,
        _id: EventId,
        _event: Event,
        _view: &W,
        _counters: &mut Counters,
    ) -> crate::plane::AccessOutcome {
        unreachable!("EmptyAccessEngine never admits an access")
    }
}

impl crate::plane::SplitDetector for EmptyDetector {
    type Sync = EmptySyncEngine;
    type Access = EmptyAccessEngine;
    type View = ();

    fn split_sync(&self) -> EmptySyncEngine {
        EmptySyncEngine
    }

    fn split_access(&self) -> EmptyAccessEngine {
        EmptyAccessEngine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OrderedListDetector;
    use freshtrack_sampling::AlwaysSampler;
    use std::sync::Arc;

    #[test]
    fn serializes_concurrent_events() {
        let online = Arc::new(OnlineDetector::new(OrderedListDetector::new(
            AlwaysSampler::new(),
        )));
        // Real instrumentation reports acquire/release while actually
        // holding the application lock; model that with a real mutex so
        // the emitted event stream obeys the locking discipline.
        let app_lock = Arc::new(Mutex::new(()));
        let handles: Vec<_> = (0..4u32)
            .map(|t| {
                let online = Arc::clone(&online);
                let app_lock = Arc::clone(&app_lock);
                std::thread::spawn(move || {
                    for i in 0..100u32 {
                        let guard = app_lock.lock().unwrap();
                        online.acquire(t, 0);
                        online.write(t, i % 3);
                        online.release(t, 0);
                        drop(guard);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(online.events_processed(), 4 * 100 * 3);
        let (detector, races) = Arc::try_unwrap(online).ok().unwrap().finish();
        // All accesses are lock-protected: no races.
        assert!(races.is_empty());
        assert_eq!(detector.counters().events, 1200);
    }

    #[test]
    fn feed_source_matches_run_source() {
        use crate::{Detector, DjitDetector};
        use freshtrack_trace::EventReader;
        let text = "T0|acq(l)\nT0|w(x)\nT0|rel(l)\nT1|w(x)\nT0|w(x)\nbogus\n";
        let good = &text[..text.len() - "bogus\n".len()];

        let online = OnlineDetector::new(DjitDetector::new(AlwaysSampler::new()));
        let fed = online
            .feed_source(&mut EventReader::new(good.as_bytes()))
            .unwrap();
        assert_eq!(fed, 5);
        let (detector, online_reports) = online.finish();
        assert_eq!(detector.counters().events, 5);

        let batch_reports = DjitDetector::new(AlwaysSampler::new())
            .run_source(&mut EventReader::new(good.as_bytes()))
            .unwrap();
        assert_eq!(online_reports, batch_reports);
        assert!(!online_reports.is_empty());

        // Errors propagate; events before the error stay processed.
        let online = OnlineDetector::new(DjitDetector::new(AlwaysSampler::new()));
        let err = online
            .feed_source(&mut EventReader::new(text.as_bytes()))
            .unwrap_err();
        assert!(err.to_string().contains("line 6"), "{err}");
        assert_eq!(online.events_processed(), 5);
    }

    #[test]
    fn empty_detector_only_counts() {
        let online = OnlineDetector::new(EmptyDetector::new());
        online.write(0, 0);
        online.write(1, 0);
        assert_eq!(online.race_count(), 0);
        let (d, races) = online.finish();
        assert!(races.is_empty());
        assert_eq!(d.counters().writes, 2);
    }
}
