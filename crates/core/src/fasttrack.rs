use freshtrack_clock::{
    wire::{self, WireReader},
    Epoch, ThreadId, VectorClock, VectorClockSnapshot,
};
use freshtrack_sampling::Sampler;
use freshtrack_trace::{Event, EventId, EventKind, VarId};

use crate::checkpoint::{self, CheckpointError, CheckpointState};
use crate::djit::VectorSyncEngine;
use crate::plane::{
    history_leq_view, AccessEngine, AccessOutcome, BorrowedView, ClockView, SplitDetector,
    SyncEngine,
};
use crate::{AccessKind, Counters, Detector, RaceReport};

/// The FastTrack race detector (Flanagan & Freund, PLDI 2009) with
/// access-level sampling.
///
/// FastTrack is Djit+ with the *epoch* optimization: write histories are
/// single epochs, and read histories adaptively switch between an epoch
/// (the common, totally-ordered case) and a full vector clock (shared
/// reads). The paper uses FastTrack as the full-detection baseline
/// (**FT**), and ThreadSanitizer's analysis is based on it.
///
/// The synchronization handlers are identical to Djit+'s — the detector
/// literally composes the same [`VectorSyncEngine`] sync plane as
/// [`DjitDetector`](crate::DjitDetector) with its own
/// [`EpochAccessEngine`] access plane — which is why the paper's
/// innovations (which target synchronization) compose with it, and why
/// its access histories shard cleanly in a two-plane
/// [`ShardedOnlineDetector`](crate::ShardedOnlineDetector).
///
/// # Example
///
/// ```
/// use freshtrack_core::{Detector, FastTrackDetector};
/// use freshtrack_sampling::AlwaysSampler;
/// use freshtrack_trace::TraceBuilder;
///
/// let mut b = TraceBuilder::new();
/// let x = b.var("x");
/// b.read(0, x);
/// b.write(1, x);
/// let races = FastTrackDetector::new(AlwaysSampler::new()).run(&b.build());
/// assert_eq!(races.len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct FastTrackDetector<S> {
    sync: VectorSyncEngine,
    access: EpochAccessEngine<S>,
    counters: Counters,
}

/// FastTrack's adaptive read history.
#[derive(Clone, Debug)]
enum ReadState {
    /// Reads are totally ordered: remember only the last one.
    Epoch(Epoch),
    /// Concurrent reads: remember the last read of every thread.
    Vector(VectorClock),
}

#[derive(Clone, Debug)]
struct VarState {
    write: Epoch,
    read: ReadState,
}

impl Default for VarState {
    fn default() -> Self {
        VarState {
            write: Epoch::zero(),
            read: ReadState::Epoch(Epoch::zero()),
        }
    }
}

/// FastTrack's access-plane half: the sampler plus per-variable
/// epoch/adaptive-vector histories. Requires only a read-only
/// [`ClockView`] of the accessing thread's clock, so it serves both the
/// monolithic [`FastTrackDetector`] and the access shards of a
/// two-plane sharded run.
#[derive(Clone, Debug)]
pub struct EpochAccessEngine<S> {
    sampler: S,
    vars: Vec<VarState>,
}

impl<S: Sampler> EpochAccessEngine<S> {
    /// Creates an empty access engine around `sampler`.
    pub fn new(sampler: S) -> Self {
        EpochAccessEngine {
            sampler,
            vars: Vec::new(),
        }
    }

    fn ensure_var(&mut self, var: VarId) {
        if self.vars.len() <= var.index() {
            self.vars.resize_with(var.index() + 1, VarState::default);
        }
    }

    fn handle_read<W: ClockView>(
        &mut self,
        id: EventId,
        tid: ThreadId,
        var: VarId,
        view: &W,
        counters: &mut Counters,
    ) -> Option<RaceReport> {
        self.ensure_var(var);
        let epoch = Epoch::new(tid, view.time_of(tid));
        let state = &mut self.vars[var.index()];

        // READ SAME EPOCH fast path.
        if matches!(state.read, ReadState::Epoch(r) if r == epoch) {
            return None;
        }
        counters.race_checks += 1;

        // Check against the last write.
        let races = !state.write.is_zero() && state.write.time() > view.time_of(state.write.tid());

        // Update the read history.
        match &mut state.read {
            ReadState::Vector(v) => {
                // READ SHARED.
                v.set(tid, epoch.time());
            }
            ReadState::Epoch(r) => {
                if r.is_zero() || r.time() <= view.time_of(r.tid()) {
                    // READ EXCLUSIVE: the previous read happens-before us.
                    state.read = ReadState::Epoch(epoch);
                } else {
                    // READ SHARE: inflate to a vector clock.
                    let mut v = VectorClock::new();
                    v.set(r.tid(), r.time());
                    v.set(tid, epoch.time());
                    state.read = ReadState::Vector(v);
                }
            }
        }

        races.then(|| {
            counters.races += 1;
            RaceReport::new(id, tid, var, AccessKind::Read, true, false)
        })
    }

    fn handle_write<W: ClockView>(
        &mut self,
        id: EventId,
        tid: ThreadId,
        var: VarId,
        view: &W,
        counters: &mut Counters,
    ) -> Option<RaceReport> {
        self.ensure_var(var);
        let epoch = Epoch::new(tid, view.time_of(tid));
        let state = &mut self.vars[var.index()];

        // WRITE SAME EPOCH fast path.
        if state.write == epoch {
            return None;
        }
        counters.race_checks += 1;

        let with_write =
            !state.write.is_zero() && state.write.time() > view.time_of(state.write.tid());
        let with_read = match &state.read {
            ReadState::Epoch(r) => !r.is_zero() && r.time() > view.time_of(r.tid()),
            ReadState::Vector(v) => !history_leq_view(v, view),
        };

        state.write = epoch;
        if matches!(state.read, ReadState::Vector(_)) {
            // WRITE SHARED deflates the read history.
            state.read = ReadState::Epoch(Epoch::zero());
        }

        (with_write || with_read).then(|| {
            counters.races += 1;
            RaceReport::new(id, tid, var, AccessKind::Write, with_write, with_read)
        })
    }

    /// The configured sampler (cloned out for hoisted deciders).
    pub(crate) fn sampler(&self) -> &S {
        &self.sampler
    }

    /// Analyzes one access event **already admitted into `S`** by the
    /// hoisted sampling decision.
    pub(crate) fn access_sampled_with<W: ClockView>(
        &mut self,
        id: EventId,
        event: Event,
        view: &W,
        counters: &mut Counters,
    ) -> AccessOutcome {
        let tid = event.tid;
        counters.sampled_accesses += 1;
        match event.kind {
            EventKind::Read(var) => {
                counters.reads += 1;
                AccessOutcome::sampled(self.handle_read(id, tid, var, view, counters))
            }
            EventKind::Write(var) => {
                counters.writes += 1;
                AccessOutcome::sampled(self.handle_write(id, tid, var, view, counters))
            }
            EventKind::Acquire(_) | EventKind::Release(_) => {
                unreachable!("sync events belong to the sync plane")
            }
        }
    }
}

impl<S> CheckpointState for EpochAccessEngine<S> {
    fn export_state(&self, out: &mut Vec<u8>) {
        wire::put_varint(out, self.vars.len() as u64);
        for state in &self.vars {
            wire::put_epoch(out, state.write);
            match &state.read {
                ReadState::Epoch(r) => {
                    wire::put_varint(out, 0);
                    wire::put_epoch(out, *r);
                }
                ReadState::Vector(v) => {
                    wire::put_varint(out, 1);
                    wire::put_clock(out, v);
                }
            }
        }
    }

    fn import_state(&mut self, bytes: &[u8]) -> Result<(), CheckpointError> {
        let mut r = WireReader::new(bytes);
        let n = checkpoint::get_count(&mut r)?;
        let mut vars = Vec::with_capacity(n);
        for _ in 0..n {
            let write = r.get_epoch()?;
            let read = match r.get_varint()? {
                0 => ReadState::Epoch(r.get_epoch()?),
                1 => ReadState::Vector(r.get_clock()?),
                _ => return Err(wire::WireError::Invalid("unknown read-history tag").into()),
            };
            vars.push(VarState { write, read });
        }
        r.finish()?;
        self.vars = vars;
        Ok(())
    }
}

impl<S: Sampler + Send> AccessEngine for EpochAccessEngine<S> {
    fn decide(&self, id: EventId, event: Event) -> bool {
        self.sampler.decide(id, event)
    }

    fn access_sampled<W: ClockView>(
        &mut self,
        id: EventId,
        event: Event,
        view: &W,
        counters: &mut Counters,
    ) -> AccessOutcome {
        self.access_sampled_with(id, event, view, counters)
    }
}

impl<S: Sampler> FastTrackDetector<S> {
    /// Creates a detector using `sampler` to pick the sample set.
    pub fn new(sampler: S) -> Self {
        FastTrackDetector {
            sync: VectorSyncEngine::new(),
            access: EpochAccessEngine::new(sampler),
            counters: Counters::new(),
        }
    }
}

impl<S: Sampler> Detector for FastTrackDetector<S> {
    fn process(&mut self, id: EventId, event: Event) -> Option<RaceReport> {
        // Hoisted-first: a skipped access is a tally and nothing else
        // (invariant 10).
        if let EventKind::Read(_) | EventKind::Write(_) = event.kind {
            if !self.access.decide(id, event) {
                self.counters.events += 1;
                crate::plane::tally_access(&event, &mut self.counters);
                return None;
            }
        }
        self.process_admitted(id, event)
    }

    fn process_admitted(&mut self, id: EventId, event: Event) -> Option<RaceReport> {
        self.counters.events += 1;
        let tid = event.tid;
        match event.kind {
            EventKind::Read(_) | EventKind::Write(_) => {
                self.sync.ensure_thread(tid);
                let Self {
                    sync,
                    access,
                    counters,
                } = self;
                let clock = sync.thread_clock(tid);
                let view = BorrowedView {
                    lookup: |u| clock.get(u),
                    width: sync.thread_count(),
                };
                access
                    .access_sampled_with(id, event, &view, counters)
                    .report
            }
            EventKind::Acquire(lock) => {
                self.sync.ensure_thread(tid);
                self.sync.acquire(tid, lock, &mut self.counters);
                None
            }
            EventKind::Release(lock) => {
                self.sync.ensure_thread(tid);
                self.sync.release(tid, lock, false, &mut self.counters);
                None
            }
        }
    }

    fn counters(&self) -> &Counters {
        &self.counters
    }

    fn reserve_threads(&mut self, n: usize) {
        self.sync.reserve_threads(n);
    }

    fn name(&self) -> &'static str {
        "FastTrack"
    }

    fn hoisted_decider(&self) -> Option<crate::HoistedDecider> {
        let sampler = self.access.sampler().clone();
        Some(Box::new(move |id, event| sampler.decide(id, event)))
    }

    fn record_skipped_accesses(&mut self, reads: u64, writes: u64) {
        self.counters.fold_skipped_accesses(reads, writes);
    }
}

impl<S> CheckpointState for FastTrackDetector<S> {
    fn export_state(&self, out: &mut Vec<u8>) {
        checkpoint::put_detector(out, &self.sync, &self.access, &[], &self.counters);
    }

    fn import_state(&mut self, bytes: &[u8]) -> Result<(), CheckpointError> {
        let (sampled, counters) =
            checkpoint::get_detector(bytes, &mut self.sync, &mut self.access)?;
        if !sampled.is_empty() {
            return Err(wire::WireError::Invalid("RelAfter_S bits on a non-epoch engine").into());
        }
        self.counters = counters;
        Ok(())
    }
}

impl<S: Sampler + Clone + Send> SplitDetector for FastTrackDetector<S> {
    type Sync = VectorSyncEngine;
    type Access = EpochAccessEngine<S>;
    type View = VectorClockSnapshot;

    fn split_sync(&self) -> VectorSyncEngine {
        VectorSyncEngine::new()
    }

    fn split_access(&self) -> EpochAccessEngine<S> {
        self.access.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DjitDetector;
    use freshtrack_sampling::AlwaysSampler;
    use freshtrack_trace::{Trace, TraceBuilder};

    fn ft() -> FastTrackDetector<AlwaysSampler> {
        FastTrackDetector::new(AlwaysSampler::new())
    }

    fn first_race(trace: &Trace) -> Option<EventId> {
        ft().run(trace).first().map(|r| r.event)
    }

    #[test]
    fn protected_accesses_do_not_race() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let l = b.lock("l");
        b.acquire(0, l).write(0, x).release(0, l);
        b.acquire(1, l).read(1, x).write(1, x).release(1, l);
        assert!(ft().run(&b.build()).is_empty());
    }

    #[test]
    fn shared_reads_then_write_races_with_all() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        b.read(0, x);
        b.read(1, x);
        b.write(2, x);
        let races = ft().run(&b.build());
        assert_eq!(races.len(), 1);
        assert!(races[0].with_read);
    }

    #[test]
    fn read_share_inflates_and_detects_race_with_earlier_reader() {
        // T0 reads, T1 reads (concurrent), T1 relays order to T2 but T0
        // does not — T2's write races with T0's read only.
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let l = b.lock("l");
        b.read(0, x);
        b.read(1, x);
        b.acquire(1, l).release(1, l);
        b.acquire(2, l).release(2, l);
        b.write(2, x);
        let races = ft().run(&b.build());
        assert_eq!(races.len(), 1);
        assert!(races[0].with_read);
    }

    #[test]
    fn same_epoch_fast_paths_do_not_recheck() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        b.write(0, x).write(0, x).read(0, x).read(0, x);
        let mut d = ft();
        assert!(d.run(&b.build()).is_empty());
        // write(check) + write(same epoch) + read(check) + read(same epoch)
        assert_eq!(d.counters().race_checks, 2);
    }

    #[test]
    fn first_race_matches_djit_on_small_traces() {
        // A handful of shapes where epoch adaptivity is exercised.
        let shapes: Vec<Trace> = vec![
            {
                let mut b = TraceBuilder::new();
                let x = b.var("x");
                b.write(0, x);
                b.write(1, x);
                b.build()
            },
            {
                let mut b = TraceBuilder::new();
                let x = b.var("x");
                b.read(0, x);
                b.read(1, x);
                b.write(0, x);
                b.build()
            },
            {
                let mut b = TraceBuilder::new();
                let x = b.var("x");
                let l = b.lock("l");
                b.acquire(0, l).write(0, x).release(0, l);
                b.read(1, x);
                b.build()
            },
        ];
        for trace in &shapes {
            let djit_first = DjitDetector::new(AlwaysSampler::new())
                .run(trace)
                .first()
                .map(|r| r.event);
            assert_eq!(first_race(trace), djit_first);
        }
    }

    #[test]
    fn write_after_ordered_reads_is_clean() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let l = b.lock("l");
        b.read(0, x);
        b.acquire(0, l).release(0, l);
        b.acquire(1, l).release(1, l);
        b.read(1, x);
        b.acquire(1, l).release(1, l);
        b.acquire(0, l).release(0, l);
        b.write(0, x);
        assert!(ft().run(&b.build()).is_empty());
    }
}
