use freshtrack_clock::{Epoch, ThreadId, VectorClock};
use freshtrack_sampling::Sampler;
use freshtrack_trace::{Event, EventId, EventKind, LockId, VarId};

use crate::{AccessKind, Counters, Detector, RaceReport};

/// The FastTrack race detector (Flanagan & Freund, PLDI 2009) with
/// access-level sampling.
///
/// FastTrack is Djit+ with the *epoch* optimization: write histories are
/// single epochs, and read histories adaptively switch between an epoch
/// (the common, totally-ordered case) and a full vector clock (shared
/// reads). The paper uses FastTrack as the full-detection baseline
/// (**FT**), and ThreadSanitizer's analysis is based on it.
///
/// The synchronization handlers are identical to Djit+'s; the epoch
/// optimization only affects access handling, which is why the paper's
/// innovations (which target synchronization) compose with it.
///
/// # Example
///
/// ```
/// use freshtrack_core::{Detector, FastTrackDetector};
/// use freshtrack_sampling::AlwaysSampler;
/// use freshtrack_trace::TraceBuilder;
///
/// let mut b = TraceBuilder::new();
/// let x = b.var("x");
/// b.read(0, x);
/// b.write(1, x);
/// let races = FastTrackDetector::new(AlwaysSampler::new()).run(&b.build());
/// assert_eq!(races.len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct FastTrackDetector<S> {
    sampler: S,
    threads: Vec<VectorClock>,
    locks: Vec<VectorClock>,
    vars: Vec<VarState>,
    counters: Counters,
}

/// FastTrack's adaptive read history.
#[derive(Clone, Debug)]
enum ReadState {
    /// Reads are totally ordered: remember only the last one.
    Epoch(Epoch),
    /// Concurrent reads: remember the last read of every thread.
    Vector(VectorClock),
}

#[derive(Clone, Debug)]
struct VarState {
    write: Epoch,
    read: ReadState,
}

impl Default for VarState {
    fn default() -> Self {
        VarState {
            write: Epoch::zero(),
            read: ReadState::Epoch(Epoch::zero()),
        }
    }
}

impl<S: Sampler> FastTrackDetector<S> {
    /// Creates a detector using `sampler` to pick the sample set.
    pub fn new(sampler: S) -> Self {
        FastTrackDetector {
            sampler,
            threads: Vec::new(),
            locks: Vec::new(),
            vars: Vec::new(),
            counters: Counters::new(),
        }
    }

    fn ensure_thread(&mut self, tid: ThreadId) {
        while self.threads.len() <= tid.index() {
            let next = ThreadId::new(self.threads.len() as u32);
            self.threads.push(VectorClock::bottom_with(next, 1));
        }
    }

    fn ensure_lock(&mut self, lock: LockId) {
        if self.locks.len() <= lock.index() {
            self.locks.resize_with(lock.index() + 1, VectorClock::new);
        }
    }

    fn ensure_var(&mut self, var: VarId) {
        if self.vars.len() <= var.index() {
            self.vars.resize_with(var.index() + 1, VarState::default);
        }
    }

    fn epoch_of(&self, tid: ThreadId) -> Epoch {
        Epoch::new(tid, self.threads[tid.index()].get(tid))
    }

    fn handle_read(&mut self, id: EventId, tid: ThreadId, var: VarId) -> Option<RaceReport> {
        self.ensure_var(var);
        let epoch = self.epoch_of(tid);
        let clock = &self.threads[tid.index()];
        let state = &mut self.vars[var.index()];

        // READ SAME EPOCH fast path.
        if matches!(state.read, ReadState::Epoch(r) if r == epoch) {
            return None;
        }
        self.counters.race_checks += 1;

        // Check against the last write.
        let races = !state.write.is_zero() && !clock.contains_epoch(state.write);

        // Update the read history.
        match &mut state.read {
            ReadState::Vector(v) => {
                // READ SHARED.
                v.set(tid, epoch.time());
            }
            ReadState::Epoch(r) => {
                if r.is_zero() || clock.contains_epoch(*r) {
                    // READ EXCLUSIVE: the previous read happens-before us.
                    state.read = ReadState::Epoch(epoch);
                } else {
                    // READ SHARE: inflate to a vector clock.
                    let mut v = VectorClock::new();
                    v.set(r.tid(), r.time());
                    v.set(tid, epoch.time());
                    state.read = ReadState::Vector(v);
                }
            }
        }

        races.then(|| {
            self.counters.races += 1;
            RaceReport::new(id, tid, var, AccessKind::Read, true, false)
        })
    }

    fn handle_write(&mut self, id: EventId, tid: ThreadId, var: VarId) -> Option<RaceReport> {
        self.ensure_var(var);
        let epoch = self.epoch_of(tid);
        let clock = &self.threads[tid.index()];
        let state = &mut self.vars[var.index()];

        // WRITE SAME EPOCH fast path.
        if state.write == epoch {
            return None;
        }
        self.counters.race_checks += 1;

        let with_write = !state.write.is_zero() && !clock.contains_epoch(state.write);
        let with_read = match &state.read {
            ReadState::Epoch(r) => !r.is_zero() && !clock.contains_epoch(*r),
            ReadState::Vector(v) => !v.leq(clock),
        };

        state.write = epoch;
        if matches!(state.read, ReadState::Vector(_)) {
            // WRITE SHARED deflates the read history.
            state.read = ReadState::Epoch(Epoch::zero());
        }

        (with_write || with_read).then(|| {
            self.counters.races += 1;
            RaceReport::new(id, tid, var, AccessKind::Write, with_write, with_read)
        })
    }
}

impl<S: Sampler> Detector for FastTrackDetector<S> {
    fn process(&mut self, id: EventId, event: Event) -> Option<RaceReport> {
        self.counters.events += 1;
        let tid = event.tid;
        self.ensure_thread(tid);
        match event.kind {
            EventKind::Read(var) => {
                self.counters.reads += 1;
                if !self.sampler.sample(id, event) {
                    return None;
                }
                self.counters.sampled_accesses += 1;
                self.handle_read(id, tid, var)
            }
            EventKind::Write(var) => {
                self.counters.writes += 1;
                if !self.sampler.sample(id, event) {
                    return None;
                }
                self.counters.sampled_accesses += 1;
                self.handle_write(id, tid, var)
            }
            EventKind::Acquire(lock) => {
                self.counters.acquires += 1;
                self.counters.acquires_processed += 1;
                self.ensure_lock(lock);
                // Bottom fast path: a never-released lock's clock is ⊥,
                // so there is nothing to join (the common first-acquire
                // case for programs with many locks).
                let lock_clock = &self.locks[lock.index()];
                if !lock_clock.is_empty() {
                    self.threads[tid.index()].join(lock_clock);
                }
                self.counters.vc_ops += 1;
                self.counters.entries_traversed += self.threads.len() as u64;
                None
            }
            EventKind::Release(lock) => {
                self.counters.releases += 1;
                self.counters.releases_processed += 1;
                self.ensure_lock(lock);
                let clock = &mut self.threads[tid.index()];
                // The release copy never needs the change count: use the
                // straight memcpy assignment.
                self.locks[lock.index()].assign_from(clock);
                clock.increment(tid);
                self.counters.vc_ops += 1;
                self.counters.entries_traversed += self.threads.len() as u64;
                self.counters.local_increments += 1;
                None
            }
        }
    }

    fn counters(&self) -> &Counters {
        &self.counters
    }

    fn reserve_threads(&mut self, n: usize) {
        if n == 0 {
            return;
        }
        let last = ThreadId::new(n as u32 - 1);
        self.ensure_thread(last);
        for clock in &mut self.threads {
            let pad = clock.get(last);
            clock.set(last, pad);
        }
    }

    fn name(&self) -> &'static str {
        "FastTrack"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DjitDetector;
    use freshtrack_sampling::AlwaysSampler;
    use freshtrack_trace::{Trace, TraceBuilder};

    fn ft() -> FastTrackDetector<AlwaysSampler> {
        FastTrackDetector::new(AlwaysSampler::new())
    }

    fn first_race(trace: &Trace) -> Option<EventId> {
        ft().run(trace).first().map(|r| r.event)
    }

    #[test]
    fn protected_accesses_do_not_race() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let l = b.lock("l");
        b.acquire(0, l).write(0, x).release(0, l);
        b.acquire(1, l).read(1, x).write(1, x).release(1, l);
        assert!(ft().run(&b.build()).is_empty());
    }

    #[test]
    fn shared_reads_then_write_races_with_all() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        b.read(0, x);
        b.read(1, x);
        b.write(2, x);
        let races = ft().run(&b.build());
        assert_eq!(races.len(), 1);
        assert!(races[0].with_read);
    }

    #[test]
    fn read_share_inflates_and_detects_race_with_earlier_reader() {
        // T0 reads, T1 reads (concurrent), T1 relays order to T2 but T0
        // does not — T2's write races with T0's read only.
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let l = b.lock("l");
        b.read(0, x);
        b.read(1, x);
        b.acquire(1, l).release(1, l);
        b.acquire(2, l).release(2, l);
        b.write(2, x);
        let races = ft().run(&b.build());
        assert_eq!(races.len(), 1);
        assert!(races[0].with_read);
    }

    #[test]
    fn same_epoch_fast_paths_do_not_recheck() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        b.write(0, x).write(0, x).read(0, x).read(0, x);
        let mut d = ft();
        assert!(d.run(&b.build()).is_empty());
        // write(check) + write(same epoch) + read(check) + read(same epoch)
        assert_eq!(d.counters().race_checks, 2);
    }

    #[test]
    fn first_race_matches_djit_on_small_traces() {
        // A handful of shapes where epoch adaptivity is exercised.
        let shapes: Vec<Trace> = vec![
            {
                let mut b = TraceBuilder::new();
                let x = b.var("x");
                b.write(0, x);
                b.write(1, x);
                b.build()
            },
            {
                let mut b = TraceBuilder::new();
                let x = b.var("x");
                b.read(0, x);
                b.read(1, x);
                b.write(0, x);
                b.build()
            },
            {
                let mut b = TraceBuilder::new();
                let x = b.var("x");
                let l = b.lock("l");
                b.acquire(0, l).write(0, x).release(0, l);
                b.read(1, x);
                b.build()
            },
        ];
        for trace in &shapes {
            let djit_first = DjitDetector::new(AlwaysSampler::new())
                .run(trace)
                .first()
                .map(|r| r.event);
            assert_eq!(first_race(trace), djit_first);
        }
    }

    #[test]
    fn write_after_ordered_reads_is_clean() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let l = b.lock("l");
        b.read(0, x);
        b.acquire(0, l).release(0, l);
        b.acquire(1, l).release(1, l);
        b.read(1, x);
        b.acquire(1, l).release(1, l);
        b.acquire(0, l).release(0, l);
        b.write(0, x);
        assert!(ft().run(&b.build()).is_empty());
    }
}
