use freshtrack_clock::{ThreadId, Time, VectorClock};
use freshtrack_sampling::Sampler;
use freshtrack_trace::{Event, EventId, EventKind, LockId};

use crate::{AccessHistories, AccessKind, Counters, Detector, RaceReport};

/// Algorithm 2 of the paper: race detection with *sampling timestamps*
/// `C_sam`.
///
/// The key change relative to Djit+ is the local-increment discipline:
/// the thread-local time `e_t` is flushed into the communicated clock
/// `C_t` — and incremented — only at the **first release after a sampled
/// event** (the set `RelAfter_S`). Consequently
/// `Σ_t C_sam(e)(t) ≤ |S|` for every event, which is what later
/// algorithms exploit. The synchronization handlers still perform an
/// `O(T)` operation per event, so this engine has Djit+'s asymptotic
/// running time; it serves as the semantic reference that the SU and SO
/// engines must match report-for-report (Lemmas 7 and 8).
///
/// # Example
///
/// ```
/// use freshtrack_core::{Detector, NaiveSamplingDetector};
/// use freshtrack_sampling::AlwaysSampler;
/// use freshtrack_trace::TraceBuilder;
///
/// let mut b = TraceBuilder::new();
/// let x = b.var("x");
/// b.write(0, x);
/// b.write(1, x);
/// let races = NaiveSamplingDetector::new(AlwaysSampler::new()).run(&b.build());
/// assert_eq!(races.len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct NaiveSamplingDetector<S> {
    sampler: S,
    threads: Vec<ThreadState>,
    locks: Vec<VectorClock>,
    history: AccessHistories,
    counters: Counters,
}

#[derive(Clone, Debug)]
struct ThreadState {
    /// The communicated clock; its own component holds the local time of
    /// the last *flushed* sampled event, not the current local time.
    clock: VectorClock,
    /// The local epoch `e_t`.
    epoch: Time,
    /// Has this thread performed a sampled event since its last release?
    sampled_since_release: bool,
}

impl Default for ThreadState {
    fn default() -> Self {
        // C_t ← ⊥; e_t ← 1 (Algorithm 2, line 3).
        ThreadState {
            clock: VectorClock::new(),
            epoch: 1,
            sampled_since_release: false,
        }
    }
}

impl<S: Sampler> NaiveSamplingDetector<S> {
    /// Creates a detector using `sampler` to pick the sample set.
    pub fn new(sampler: S) -> Self {
        NaiveSamplingDetector {
            sampler,
            threads: Vec::new(),
            locks: Vec::new(),
            history: AccessHistories::new(),
            counters: Counters::new(),
        }
    }

    fn ensure_thread(&mut self, tid: ThreadId) {
        if self.threads.len() <= tid.index() {
            self.threads
                .resize_with(tid.index() + 1, ThreadState::default);
        }
    }

    fn ensure_lock(&mut self, lock: LockId) {
        if self.locks.len() <= lock.index() {
            self.locks.resize_with(lock.index() + 1, VectorClock::new);
        }
    }

    /// The race-check view of the thread clock: `C_t[t ↦ e_t]`.
    fn view(state: &ThreadState, tid: ThreadId) -> impl Fn(ThreadId) -> Time + '_ {
        let epoch = state.epoch;
        move |u| if u == tid { epoch } else { state.clock.get(u) }
    }
}

impl<S: Sampler> Detector for NaiveSamplingDetector<S> {
    fn process(&mut self, id: EventId, event: Event) -> Option<RaceReport> {
        // Hoisted-first: a skipped access is a tally and nothing else
        // (invariant 10).
        if let EventKind::Read(_) | EventKind::Write(_) = event.kind {
            if !self.sampler.decide(id, event) {
                self.counters.events += 1;
                match event.kind {
                    EventKind::Read(_) => self.counters.reads += 1,
                    _ => self.counters.writes += 1,
                }
                return None;
            }
        }
        self.process_admitted(id, event)
    }

    fn process_admitted(&mut self, id: EventId, event: Event) -> Option<RaceReport> {
        self.counters.events += 1;
        let tid = event.tid;
        match event.kind {
            EventKind::Read(var) => {
                self.counters.reads += 1;
                self.ensure_thread(tid);
                self.counters.sampled_accesses += 1;
                self.counters.race_checks += 1;
                let state = &mut self.threads[tid.index()];
                state.sampled_since_release = true;
                let epoch = state.epoch;
                let races = self.history.read_races(var, Self::view(state, tid));
                self.history.record_read(var, tid, epoch);
                races.then(|| {
                    self.counters.races += 1;
                    RaceReport::new(id, tid, var, AccessKind::Read, true, false)
                })
            }
            EventKind::Write(var) => {
                self.counters.writes += 1;
                self.ensure_thread(tid);
                self.counters.sampled_accesses += 1;
                self.counters.race_checks += 1;
                let threads = self.threads.len();
                let state = &mut self.threads[tid.index()];
                state.sampled_since_release = true;
                let (with_write, with_read) = self.history.write_races(var, Self::view(state, tid));
                self.history
                    .record_write(var, threads, Self::view(state, tid));
                (with_write || with_read).then(|| {
                    self.counters.races += 1;
                    RaceReport::new(id, tid, var, AccessKind::Write, with_write, with_read)
                })
            }
            EventKind::Acquire(lock) => {
                self.ensure_thread(tid);
                self.counters.acquires += 1;
                self.counters.acquires_processed += 1;
                self.ensure_lock(lock);
                self.threads[tid.index()]
                    .clock
                    .join(&self.locks[lock.index()]);
                self.counters.vc_ops += 1;
                self.counters.entries_traversed += self.threads.len() as u64;
                None
            }
            EventKind::Release(lock) => {
                self.ensure_thread(tid);
                self.counters.releases += 1;
                self.counters.releases_processed += 1;
                self.ensure_lock(lock);
                let state = &mut self.threads[tid.index()];
                if state.sampled_since_release {
                    // This release is in RelAfter_S: flush and advance.
                    state.clock.set(tid, state.epoch);
                    state.epoch += 1;
                    state.sampled_since_release = false;
                    self.counters.local_increments += 1;
                }
                self.locks[lock.index()].copy_from(&state.clock);
                self.counters.vc_ops += 1;
                self.counters.entries_traversed += self.threads.len() as u64;
                None
            }
        }
    }

    fn counters(&self) -> &Counters {
        &self.counters
    }

    fn reserve_threads(&mut self, n: usize) {
        if n == 0 {
            return;
        }
        let last = ThreadId::new(n as u32 - 1);
        self.ensure_thread(last);
        for state in &mut self.threads {
            let pad = state.clock.get(last);
            state.clock.set(last, pad);
        }
    }

    fn name(&self) -> &'static str {
        "ST(sam)"
    }

    fn hoisted_decider(&self) -> Option<crate::HoistedDecider> {
        let sampler = self.sampler.clone();
        Some(Box::new(move |id, event| sampler.decide(id, event)))
    }

    fn record_skipped_accesses(&mut self, reads: u64, writes: u64) {
        self.counters.fold_skipped_accesses(reads, writes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freshtrack_sampling::AlwaysSampler;
    use freshtrack_trace::TraceBuilder;

    fn full() -> NaiveSamplingDetector<AlwaysSampler> {
        NaiveSamplingDetector::new(AlwaysSampler::new())
    }

    #[test]
    fn protected_accesses_do_not_race() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let l = b.lock("l");
        b.acquire(0, l).write(0, x).release(0, l);
        b.acquire(1, l).write(1, x).release(1, l);
        assert!(full().run(&b.build()).is_empty());
    }

    #[test]
    fn same_thread_accesses_do_not_race_despite_stale_own_entry() {
        // C_t(t) lags e_t between releases; the race-check view must
        // splice in e_t or these would be false positives.
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        b.write(0, x).read(0, x).write(0, x);
        assert!(full().run(&b.build()).is_empty());
    }

    #[test]
    fn local_increments_only_after_sampled_events() {
        let mut b = TraceBuilder::new();
        let l = b.lock("l");
        let x = b.var("x");
        // Release with nothing sampled since: no increment.
        b.acquire(0, l).release(0, l);
        // Sampled write, then two releases: only the first increments.
        b.acquire(0, l).write(0, x).release(0, l);
        b.acquire(0, l).release(0, l);
        let mut d = full();
        d.run(&b.build());
        assert_eq!(d.counters().local_increments, 1);
    }

    #[test]
    fn fig1_clock_table_from_paper() {
        // The lock-ladder execution of Fig. 1 (threads t1,t2 → T0,T1).
        // Events e5, e15, e16 (the writes at positions 4, 14, 15) are in S.
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let l1 = b.lock("l1");
        let l2 = b.lock("l2");
        let l3 = b.lock("l3");
        let l4 = b.lock("l4");
        b.acquire(0, l4); // e1
        b.acquire(0, l3); // e2
        b.acquire(0, l2); // e3
        b.acquire(0, l1); // e4
        b.write(0, x); //    e5  (sampled)
        b.release(0, l1); // e6
        b.write(0, x); //    e7  (not sampled)
        b.acquire(1, l1); // e8
        b.write(1, x); //    e9  (not sampled)
        b.release(0, l2); // e10
        b.write(0, x); //    e11 (not sampled)
        b.acquire(1, l2); // e12
        b.release(0, l3); // e13
        b.acquire(1, l3); // e14
        b.write(0, x); //    e15 (sampled)
        b.write(0, x); //    e16 (sampled)
        b.release(0, l4); // e17
        b.acquire(1, l4); // e18
        let trace = b.build();

        #[derive(Clone)]
        struct MarkSampler;
        impl Sampler for MarkSampler {
            fn decide(&self, id: EventId, _event: Event) -> bool {
                matches!(id.index(), 4 | 14 | 15)
            }
            fn nominal_rate(&self) -> f64 {
                f64::NAN
            }
        }

        let mut d = NaiveSamplingDetector::new(MarkSampler);
        let mut states: Vec<(usize, Time, VectorClock)> = Vec::new();
        for (id, event) in trace.iter() {
            d.process(id, event);
            if event.tid == ThreadId::new(0) {
                let s = &d.threads[0];
                states.push((id.index(), s.epoch, s.clock.clone()));
            }
        }

        // After e6 (the first release after sampled e5): e_t = 2,
        // C_t1 = ⟨1,0⟩ — matching the right-hand table of Fig. 1.
        let after_e6 = states.iter().find(|(i, _, _)| *i == 5).unwrap();
        assert_eq!(after_e6.1, 2);
        assert_eq!(after_e6.2.get(ThreadId::new(0)), 1);

        // e10 and e13 are NOT in RelAfter_S: epoch still 2, clock ⟨1,0⟩.
        let after_e13 = states.iter().find(|(i, _, _)| *i == 12).unwrap();
        assert_eq!(after_e13.1, 2);
        assert_eq!(after_e13.2.get(ThreadId::new(0)), 1);

        // e17 follows sampled e15/e16: epoch 3, clock ⟨2,0⟩.
        let after_e17 = states.iter().find(|(i, _, _)| *i == 16).unwrap();
        assert_eq!(after_e17.1, 3);
        assert_eq!(after_e17.2.get(ThreadId::new(0)), 2);

        // Final lock clocks: ℓ1..ℓ3 carry ⟨1,0⟩, ℓ4 carries ⟨2,0⟩.
        assert_eq!(d.locks[l1.index()].get(ThreadId::new(0)), 1);
        assert_eq!(d.locks[l2.index()].get(ThreadId::new(0)), 1);
        assert_eq!(d.locks[l3.index()].get(ThreadId::new(0)), 1);
        assert_eq!(d.locks[l4.index()].get(ThreadId::new(0)), 2);
    }
}
