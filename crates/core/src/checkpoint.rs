//! Engine-state checkpointing on the sync/access plane seam.
//!
//! A checkpoint is a *serialized* copy of an engine's state —
//! deliberately never a `Clone`. The lazy-copy clock types
//! ([`SharedClock`](freshtrack_clock::SharedClock),
//! [`SharedVectorClock`](freshtrack_clock::SharedVectorClock)) share
//! their backing storage on clone, so a cloned engine would see
//! spurious deep-copy events the moment either copy mutates — breaking
//! the work-counter parity the differential suites pin. Round-tripping
//! through bytes gives the imported engine exclusive ownership of its
//! storage while carrying identical clock *values* (widths and
//! ordered-list recency chains included, see
//! [`freshtrack_clock::wire`]), so it reproduces the original's race
//! verdicts exactly. Sharing topology survives too: the one engine with
//! cross-object aliasing
//! ([`OrderedSyncEngine`](crate::OrderedSyncEngine)) records each live
//! thread↔lock alias as a mark and rebuilds the alias on import, so
//! even `deep_copies` — the only counter that depends on sharing —
//! continues exactly after a resume. The checkpoint suite pins full
//! counter equality (invariant 11 in `ARCHITECTURE.md`).
//!
//! Two layers implement the trait:
//!
//! * **Sync engines** ([`VectorSyncEngine`](crate::VectorSyncEngine),
//!   [`FreshnessSyncEngine`](crate::FreshnessSyncEngine),
//!   [`OrderedSyncEngine`](crate::OrderedSyncEngine)) — what the
//!   segmented parallel analyzer ([`crate::analyze_segments`]) exports
//!   at every segment boundary to seed worker replicas.
//! * **Whole detectors** (Djit+/FT/SU/SO) — sync plane + access plane +
//!   `RelAfter_S` bits + counters, so an interrupted sequential
//!   analysis can resume at a segment boundary and continue
//!   byte-identically.
//!
//! Configuration (sampler seed, SO's local-epoch option) is *not* part
//! of a checkpoint: import targets a fresh engine built from the same
//! configuration (e.g. via
//! [`SplitDetector::split_sync`](crate::SplitDetector::split_sync)),
//! mirroring how the trace-file checkpoints of `.ftb` v2 carry only
//! sampler-independent canonical state.

use std::fmt;

use freshtrack_clock::wire::{self, WireError, WireReader};

use crate::Counters;

/// A checkpoint that failed to import (truncated or malformed bytes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckpointError(WireError);

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed checkpoint: {}", self.0)
    }
}

impl std::error::Error for CheckpointError {}

impl From<WireError> for CheckpointError {
    fn from(e: WireError) -> Self {
        CheckpointError(e)
    }
}

/// State that can be exported to bytes and imported into a fresh
/// instance of the same configuration.
///
/// The contract: for any reachable state `s`,
/// `fresh.import_state(&export(s))` yields an engine that is
/// *verdict-equivalent* to `s` — every subsequent event sequence
/// produces the same race reports (and, for sync engines, publishes
/// value-identical clock views). Export is deterministic, so
/// export → import → export is byte-idempotent; the checkpoint suite
/// pins both properties.
pub trait CheckpointState {
    /// Serializes the current state onto `out`.
    fn export_state(&self, out: &mut Vec<u8>);

    /// Replaces this instance's state with the decoded checkpoint.
    /// `self` should be freshly constructed with the same configuration
    /// the exporter had; configuration itself is not transferred.
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] on truncated or malformed bytes; `self` may
    /// be partially overwritten and should be discarded on error.
    fn import_state(&mut self, bytes: &[u8]) -> Result<(), CheckpointError>;
}

/// Encodes `curr` as a delta against `prev`:
/// `[common-prefix len][common-suffix len][middle len][middle bytes]`,
/// all varints. Consecutive sync-plane exports differ only where clocks
/// moved since the previous segment, so the shared prefix/suffix
/// typically swallow almost the whole checkpoint —
/// [`analyze_segments`](crate::analyze_segments) ships one full export
/// per wave and a delta chain for the rest.
///
/// The inverse is [`apply_delta`]; `apply_delta(prev, &encode_delta(prev,
/// curr)) == curr` for all byte strings (the checkpoint suite pins
/// this, including the degenerate empty/identical cases).
pub fn encode_delta(prev: &[u8], curr: &[u8]) -> Vec<u8> {
    let prefix = prev.iter().zip(curr).take_while(|(a, b)| a == b).count();
    let suffix = prev[prefix..]
        .iter()
        .rev()
        .zip(curr[prefix..].iter().rev())
        .take_while(|(a, b)| a == b)
        .count();
    let middle = &curr[prefix..curr.len() - suffix];
    let mut out = Vec::with_capacity(middle.len() + 15);
    wire::put_varint(&mut out, prefix as u64);
    wire::put_varint(&mut out, suffix as u64);
    wire::put_varint(&mut out, middle.len() as u64);
    out.extend_from_slice(middle);
    out
}

/// Reconstructs the checkpoint [`encode_delta`] compressed:
/// `prev[..prefix] ++ middle ++ prev[len-suffix..]`.
///
/// # Errors
///
/// [`CheckpointError`] if the delta is truncated, carries trailing
/// bytes, or names a prefix/suffix longer than `prev` — a delta is only
/// meaningful against the exact bytes it was encoded from.
pub fn apply_delta(prev: &[u8], delta: &[u8]) -> Result<Vec<u8>, CheckpointError> {
    let mut r = WireReader::new(delta);
    let prefix = r.get_usize()?;
    let suffix = r.get_usize()?;
    let middle_len = r.get_usize()?;
    let middle = r.get_bytes(middle_len)?;
    r.finish()?;
    if prefix.checked_add(suffix).map_or(true, |n| n > prev.len()) {
        return Err(CheckpointError(WireError::Invalid(
            "delta prefix+suffix exceed the base checkpoint",
        )));
    }
    let mut out = Vec::with_capacity(prefix + middle.len() + suffix);
    out.extend_from_slice(&prev[..prefix]);
    out.extend_from_slice(middle);
    out.extend_from_slice(&prev[prev.len() - suffix..]);
    Ok(out)
}

// ---------------------------------------------------------------------
// Shared wire helpers for the impls in the engine modules.
// ---------------------------------------------------------------------

/// Decodes an element count, guarded against the bytes actually
/// available (each element costs at least one byte) so corrupt input
/// cannot size a huge allocation.
pub(crate) fn get_count(r: &mut WireReader<'_>) -> Result<usize, WireError> {
    let n = r.get_usize()?;
    if n > r.remaining() {
        return Err(WireError::Truncated);
    }
    Ok(n)
}

/// Appends a length-prefixed nested section (an inner checkpoint).
pub(crate) fn put_section(out: &mut Vec<u8>, bytes: &[u8]) {
    wire::put_varint(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

/// Reads a length-prefixed nested section written by [`put_section`].
pub(crate) fn get_section<'a>(r: &mut WireReader<'a>) -> Result<&'a [u8], WireError> {
    let len = r.get_usize()?;
    r.get_bytes(len)
}

/// Appends a `RelAfter_S` bit vector.
pub(crate) fn put_bools(out: &mut Vec<u8>, bits: &[bool]) {
    wire::put_varint(out, bits.len() as u64);
    for &bit in bits {
        wire::put_bool(out, bit);
    }
}

/// Reads a bit vector written by [`put_bools`].
pub(crate) fn get_bools(r: &mut WireReader<'_>) -> Result<Vec<bool>, WireError> {
    let n = get_count(r)?;
    (0..n).map(|_| r.get_bool()).collect()
}

/// Appends every [`Counters`] field, in declaration order.
pub(crate) fn put_counters(out: &mut Vec<u8>, c: &Counters) {
    for value in counters_fields(c) {
        wire::put_varint(out, value);
    }
}

/// Reads counters written by [`put_counters`].
pub(crate) fn get_counters(r: &mut WireReader<'_>) -> Result<Counters, WireError> {
    let mut c = Counters::new();
    for slot in counters_fields_mut(&mut c) {
        *slot = r.get_varint()?;
    }
    Ok(c)
}

fn counters_fields(c: &Counters) -> [u64; 18] {
    [
        c.events,
        c.reads,
        c.writes,
        c.sampled_accesses,
        c.acquires,
        c.releases,
        c.acquires_skipped,
        c.acquires_processed,
        c.releases_skipped,
        c.releases_processed,
        c.shallow_copies,
        c.deep_copies,
        c.local_increments,
        c.entries_traversed,
        c.entries_saved,
        c.vc_ops,
        c.race_checks,
        c.races,
    ]
}

fn counters_fields_mut(c: &mut Counters) -> [&mut u64; 18] {
    [
        &mut c.events,
        &mut c.reads,
        &mut c.writes,
        &mut c.sampled_accesses,
        &mut c.acquires,
        &mut c.releases,
        &mut c.acquires_skipped,
        &mut c.acquires_processed,
        &mut c.releases_skipped,
        &mut c.releases_processed,
        &mut c.shallow_copies,
        &mut c.deep_copies,
        &mut c.local_increments,
        &mut c.entries_traversed,
        &mut c.entries_saved,
        &mut c.vc_ops,
        &mut c.race_checks,
        &mut c.races,
    ]
}

/// Exports a whole split detector: sync section, access section,
/// `RelAfter_S` bits, counters. Shared by the four detector impls.
pub(crate) fn put_detector<Sy, Ac>(
    out: &mut Vec<u8>,
    sync: &Sy,
    access: &Ac,
    sampled: &[bool],
    counters: &Counters,
) where
    Sy: CheckpointState,
    Ac: CheckpointState,
{
    let mut section = Vec::new();
    sync.export_state(&mut section);
    put_section(out, &section);
    section.clear();
    access.export_state(&mut section);
    put_section(out, &section);
    put_bools(out, sampled);
    put_counters(out, counters);
}

/// Imports a whole split detector written by [`put_detector`].
pub(crate) fn get_detector<Sy, Ac>(
    bytes: &[u8],
    sync: &mut Sy,
    access: &mut Ac,
) -> Result<(Vec<bool>, Counters), CheckpointError>
where
    Sy: CheckpointState,
    Ac: CheckpointState,
{
    let mut r = WireReader::new(bytes);
    let sync_bytes = get_section(&mut r)?;
    let access_bytes = get_section(&mut r)?;
    let sampled = get_bools(&mut r)?;
    let counters = get_counters(&mut r)?;
    r.finish()?;
    sync.import_state(sync_bytes)?;
    access.import_state(access_bytes)?;
    Ok((sampled, counters))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_round_trip_every_field() {
        let mut c = Counters::new();
        for (i, slot) in counters_fields_mut(&mut c).into_iter().enumerate() {
            *slot = (i as u64 + 1) * 1000 + i as u64;
        }
        let mut buf = Vec::new();
        put_counters(&mut buf, &c);
        let mut r = WireReader::new(&buf);
        assert_eq!(get_counters(&mut r).unwrap(), c);
        assert!(r.finish().is_ok());
    }

    #[test]
    fn bools_and_sections_round_trip() {
        let mut buf = Vec::new();
        put_bools(&mut buf, &[true, false, true]);
        put_section(&mut buf, b"inner");
        let mut r = WireReader::new(&buf);
        assert_eq!(get_bools(&mut r).unwrap(), vec![true, false, true]);
        assert_eq!(get_section(&mut r).unwrap(), b"inner");
        assert!(r.finish().is_ok());
    }

    #[test]
    fn truncated_input_is_a_clean_error() {
        let mut buf = Vec::new();
        put_bools(&mut buf, &[true; 8]);
        for cut in 0..buf.len() {
            assert!(get_bools(&mut WireReader::new(&buf[..cut])).is_err());
        }
    }

    #[test]
    fn delta_round_trips_every_shape() {
        let cases: &[(&[u8], &[u8])] = &[
            (b"", b""),
            (b"", b"abc"),
            (b"abc", b""),
            (b"abcdef", b"abcdef"),
            (b"abcdef", b"abcXdef"), // insertion
            (b"abcXdef", b"abcdef"), // deletion
            (b"abcdef", b"abcYef"),  // substitution
            (b"aa", b"a"),           // overlap-prone shrink
            (b"a", b"aa"),           // overlap-prone grow
            (b"xyz", b"pqr"),        // nothing shared
            (b"prefix-mid-suffix", b"prefix-OTHER-suffix"),
        ];
        for (prev, curr) in cases {
            let delta = encode_delta(prev, curr);
            assert_eq!(
                apply_delta(prev, &delta).unwrap(),
                *curr,
                "prev={prev:?} curr={curr:?}"
            );
        }
    }

    #[test]
    fn identical_checkpoints_make_tiny_deltas() {
        let bytes = vec![7u8; 10_000];
        let delta = encode_delta(&bytes, &bytes);
        assert!(delta.len() <= 5, "{} bytes", delta.len());
        assert_eq!(apply_delta(&bytes, &delta).unwrap(), bytes);
    }

    #[test]
    fn malformed_deltas_are_clean_errors() {
        let prev = b"abcdef";
        let good = encode_delta(prev, b"abcXdef");
        for cut in 0..good.len() {
            assert!(apply_delta(prev, &good[..cut]).is_err(), "cut={cut}");
        }
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(apply_delta(prev, &trailing).is_err());
        // A delta claiming more shared bytes than the base holds.
        let mut oversized = Vec::new();
        wire::put_varint(&mut oversized, 5);
        wire::put_varint(&mut oversized, 5);
        wire::put_varint(&mut oversized, 0);
        assert!(apply_delta(prev, &oversized).is_err());
    }
}
