use freshtrack_clock::{ThreadId, VectorClock};
use freshtrack_sampling::Sampler;
use freshtrack_trace::{Event, EventId, EventKind, LockId};

use crate::{AccessHistories, AccessKind, Counters, Detector, RaceReport};

/// Algorithm 1 of the paper: the classical Djit+ vector-clock race
/// detector, extended with access-level sampling.
///
/// With [`AlwaysSampler`](freshtrack_sampling::AlwaysSampler) this is
/// exactly Djit+ (every access analyzed). With a real sampler it becomes
/// the paper's **ST** configuration — "the naive sampling algorithm
/// without optimizations on synchronization handlers": non-sampled
/// accesses are skipped entirely, but every acquire still performs an
/// `O(T)` join and every release an `O(T)` copy plus a local increment.
///
/// # Example
///
/// ```
/// use freshtrack_core::{Detector, DjitDetector};
/// use freshtrack_sampling::AlwaysSampler;
/// use freshtrack_trace::TraceBuilder;
///
/// let mut b = TraceBuilder::new();
/// let x = b.var("x");
/// b.write(0, x);
/// b.write(1, x);
/// let races = DjitDetector::new(AlwaysSampler::new()).run(&b.build());
/// assert_eq!(races.len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct DjitDetector<S> {
    sampler: S,
    threads: Vec<ThreadState>,
    locks: Vec<VectorClock>,
    history: AccessHistories,
    counters: Counters,
}

#[derive(Clone, Debug)]
struct ThreadState {
    clock: VectorClock,
}

impl ThreadState {
    fn new(tid: ThreadId) -> Self {
        // C_t ← ⊥[t ↦ 1]
        ThreadState {
            clock: VectorClock::bottom_with(tid, 1),
        }
    }
}

impl<S: Sampler> DjitDetector<S> {
    /// Creates a detector using `sampler` to pick the sample set.
    pub fn new(sampler: S) -> Self {
        DjitDetector {
            sampler,
            threads: Vec::new(),
            locks: Vec::new(),
            history: AccessHistories::new(),
            counters: Counters::new(),
        }
    }

    fn thread_count(&self) -> usize {
        self.threads.len()
    }

    fn ensure_thread(&mut self, tid: ThreadId) {
        while self.threads.len() <= tid.index() {
            let next = ThreadId::new(self.threads.len() as u32);
            self.threads.push(ThreadState::new(next));
        }
    }

    fn ensure_lock(&mut self, lock: LockId) {
        if self.locks.len() <= lock.index() {
            self.locks.resize_with(lock.index() + 1, VectorClock::new);
        }
    }
}

impl<S: Sampler> Detector for DjitDetector<S> {
    fn process(&mut self, id: EventId, event: Event) -> Option<RaceReport> {
        self.counters.events += 1;
        let tid = event.tid;
        self.ensure_thread(tid);
        match event.kind {
            EventKind::Read(var) => {
                self.counters.reads += 1;
                if !self.sampler.sample(id, event) {
                    return None;
                }
                self.counters.sampled_accesses += 1;
                self.counters.race_checks += 1;
                let clock = &self.threads[tid.index()].clock;
                let races = self.history.read_races(var, |u| clock.get(u));
                let local = clock.get(tid);
                self.history.record_read(var, tid, local);
                races.then(|| {
                    self.counters.races += 1;
                    RaceReport::new(id, tid, var, AccessKind::Read, true, false)
                })
            }
            EventKind::Write(var) => {
                self.counters.writes += 1;
                if !self.sampler.sample(id, event) {
                    return None;
                }
                self.counters.sampled_accesses += 1;
                self.counters.race_checks += 1;
                let threads = self.thread_count();
                let clock = &self.threads[tid.index()].clock;
                let (with_write, with_read) = self.history.write_races(var, |u| clock.get(u));
                self.history.record_write(var, threads, |u| clock.get(u));
                (with_write || with_read).then(|| {
                    self.counters.races += 1;
                    RaceReport::new(id, tid, var, AccessKind::Write, with_write, with_read)
                })
            }
            EventKind::Acquire(lock) => {
                self.counters.acquires += 1;
                self.counters.acquires_processed += 1;
                self.ensure_lock(lock);
                // Bottom fast path: a never-released lock carries ⊥ and
                // cannot teach the thread anything.
                let lock_clock = &self.locks[lock.index()];
                if !lock_clock.is_empty() {
                    self.threads[tid.index()].clock.join(lock_clock);
                }
                self.counters.vc_ops += 1;
                self.counters.entries_traversed += self.thread_count() as u64;
                None
            }
            EventKind::Release(lock) => {
                self.counters.releases += 1;
                self.counters.releases_processed += 1;
                self.ensure_lock(lock);
                // Cℓ ← C_t (straight memcpy; the change count is not
                // needed), then bump the local component.
                let clock = &mut self.threads[tid.index()].clock;
                self.locks[lock.index()].assign_from(clock);
                clock.increment(tid);
                self.counters.vc_ops += 1;
                self.counters.entries_traversed += self.thread_count() as u64;
                self.counters.local_increments += 1;
                None
            }
        }
    }

    fn counters(&self) -> &Counters {
        &self.counters
    }

    fn reserve_threads(&mut self, n: usize) {
        if n == 0 {
            return;
        }
        let last = ThreadId::new(n as u32 - 1);
        self.ensure_thread(last);
        for state in &mut self.threads {
            let pad = state.clock.get(last);
            state.clock.set(last, pad);
        }
    }

    fn name(&self) -> &'static str {
        "Djit+"
    }
}

impl<S: Sampler> crate::SyncOps for DjitDetector<S> {
    fn release_store(&mut self, tid: u32, sync: LockId) {
        let tid = ThreadId::new(tid);
        self.ensure_thread(tid);
        self.ensure_lock(sync);
        self.counters.releases += 1;
        self.counters.releases_processed += 1;
        let clock = &mut self.threads[tid.index()].clock;
        self.locks[sync.index()].assign_from(clock);
        clock.increment(tid);
        self.counters.local_increments += 1;
        self.counters.vc_ops += 1;
        self.counters.entries_traversed += self.threads.len() as u64;
    }

    fn release_join(&mut self, tid: u32, sync: LockId) {
        let tid = ThreadId::new(tid);
        self.ensure_thread(tid);
        self.ensure_lock(sync);
        self.counters.releases += 1;
        self.counters.releases_processed += 1;
        let clock = &mut self.threads[tid.index()].clock;
        self.locks[sync.index()].join(clock);
        clock.increment(tid);
        self.counters.local_increments += 1;
        self.counters.vc_ops += 1;
        self.counters.entries_traversed += self.threads.len() as u64;
    }

    fn acquire_sync(&mut self, tid: u32, sync: LockId) {
        let tid = ThreadId::new(tid);
        self.ensure_thread(tid);
        self.ensure_lock(sync);
        self.counters.acquires += 1;
        self.counters.acquires_processed += 1;
        let lock_clock = &self.locks[sync.index()];
        if !lock_clock.is_empty() {
            self.threads[tid.index()].clock.join(lock_clock);
        }
        self.counters.vc_ops += 1;
        self.counters.entries_traversed += self.threads.len() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freshtrack_sampling::AlwaysSampler;
    use freshtrack_trace::TraceBuilder;

    fn full() -> DjitDetector<AlwaysSampler> {
        DjitDetector::new(AlwaysSampler::new())
    }

    #[test]
    fn lock_protected_accesses_do_not_race() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let l = b.lock("l");
        b.acquire(0, l).write(0, x).release(0, l);
        b.acquire(1, l).write(1, x).release(1, l);
        assert!(full().run(&b.build()).is_empty());
    }

    #[test]
    fn unsynchronized_writes_race() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        b.write(0, x);
        b.write(1, x);
        let races = full().run(&b.build());
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].event.index(), 1);
        assert!(races[0].with_write);
    }

    #[test]
    fn read_read_is_not_a_race() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        b.read(0, x);
        b.read(1, x);
        assert!(full().run(&b.build()).is_empty());
    }

    #[test]
    fn write_after_unordered_read_races() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        b.read(0, x);
        b.write(1, x);
        let races = full().run(&b.build());
        assert_eq!(races.len(), 1);
        assert!(races[0].with_read);
        assert!(!races[0].with_write);
    }

    #[test]
    fn fork_edge_orders_accesses() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        b.write(0, x);
        b.fork(0, 1);
        b.write(1, x);
        assert!(full().run(&b.build()).is_empty());
    }

    #[test]
    fn join_edge_orders_accesses() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        b.fork(0, 1);
        b.write(1, x);
        b.join(0, 1);
        b.write(0, x);
        assert!(full().run(&b.build()).is_empty());
    }

    #[test]
    fn same_thread_accesses_never_race() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        b.write(0, x).read(0, x).write(0, x);
        assert!(full().run(&b.build()).is_empty());
    }

    #[test]
    fn lock_chain_provides_transitive_order() {
        // T0 writes under l; T1 relays via l→m; T2 reads under m.
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let l = b.lock("l");
        let m = b.lock("m");
        b.acquire(0, l).write(0, x).release(0, l);
        b.acquire(1, l).acquire(1, m).release(1, m).release(1, l);
        b.acquire(2, m).read(2, x).release(2, m);
        assert!(full().run(&b.build()).is_empty());
    }

    #[test]
    fn counters_track_sync_work() {
        let mut b = TraceBuilder::new();
        let l = b.lock("l");
        b.acquire(0, l).release(0, l);
        b.acquire(1, l).release(1, l);
        let mut d = full();
        d.run(&b.build());
        let c = d.counters();
        assert_eq!(c.acquires, 2);
        assert_eq!(c.releases, 2);
        assert_eq!(c.acquires_processed, 2);
        assert_eq!(c.releases_processed, 2);
        assert_eq!(c.local_increments, 2);
        assert_eq!(c.acquires_skipped, 0);
    }
}
