use freshtrack_clock::{
    wire::{self, WireReader},
    SharedVectorClock, ThreadId, Time, VectorClock, VectorClockSnapshot,
};
use freshtrack_sampling::Sampler;
use freshtrack_trace::{Event, EventId, EventKind, LockId, SyncCheckpoint};

use crate::checkpoint::{self, CheckpointError, CheckpointState};
use crate::plane::{
    self, AccessEngine, BorrowedView, HistoryAccessEngine, SplitDetector, SyncEngine,
};
use crate::{Counters, Detector, HoistedDecider, RaceReport};

/// The sync-plane half shared by the engines whose synchronization
/// handlers are the classical Djit+ ones: every thread clock and lock
/// clock held once, acquire = `O(T)` join, release = `O(T)` copy plus a
/// local increment. Both [`DjitDetector`] and
/// [`FastTrackDetector`](crate::FastTrackDetector) are compositions
/// over this type (FastTrack's epoch optimization only changes *access*
/// handling), and it is what a two-plane
/// [`ShardedOnlineDetector`](crate::ShardedOnlineDetector) holds behind
/// its sync-only lock.
///
/// Thread clocks live in [`SharedVectorClock`]s so a published
/// [`VectorClockSnapshot`] view is an `O(1)` hand-off; a monolithic
/// detector never publishes, so its clocks stay exclusively owned and
/// every mutation is as cheap as a plain `VectorClock`.
#[derive(Clone, Debug, Default)]
pub struct VectorSyncEngine {
    threads: Vec<SharedVectorClock>,
    locks: Vec<VectorClock>,
}

impl VectorSyncEngine {
    /// Creates an empty sync engine.
    pub fn new() -> Self {
        VectorSyncEngine::default()
    }

    fn ensure_lock(&mut self, lock: LockId) {
        if self.locks.len() <= lock.index() {
            self.locks.resize_with(lock.index() + 1, VectorClock::new);
        }
    }

    /// Number of threads observed so far.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// Read access to thread `tid`'s clock (which must exist).
    pub fn thread_clock(&self, tid: ThreadId) -> &VectorClock {
        self.threads[tid.index()].clock()
    }

    /// `Release` (join) semantics for non-mutex sync objects
    /// (Appendix A.2): the object's clock *accumulates* the thread's.
    pub(crate) fn release_join(&mut self, tid: ThreadId, lock: LockId, counters: &mut Counters) {
        self.ensure_thread(tid);
        self.ensure_lock(lock);
        counters.releases += 1;
        counters.releases_processed += 1;
        let (clock, deep) = self.threads[tid.index()].make_mut();
        if deep {
            counters.deep_copies += 1;
        }
        self.locks[lock.index()].join(clock);
        clock.increment(tid);
        counters.local_increments += 1;
        counters.vc_ops += 1;
        counters.entries_traversed += self.threads.len() as u64;
    }

    /// Reconstructs the engine from a `.ftb` v2 file checkpoint — the
    /// format's engine-agnostic canonical state *is* Djit+ state, so for
    /// this engine the conversion is a direct reload.
    pub fn from_sync_checkpoint(ckpt: &SyncCheckpoint) -> Self {
        VectorSyncEngine {
            threads: ckpt
                .threads
                .iter()
                .map(|clock| SharedVectorClock::from_clock(clock.clone()))
                .collect(),
            locks: ckpt.locks.clone(),
        }
    }
}

impl CheckpointState for VectorSyncEngine {
    fn export_state(&self, out: &mut Vec<u8>) {
        wire::put_varint(out, self.threads.len() as u64);
        for thread in &self.threads {
            wire::put_clock(out, thread.clock());
        }
        wire::put_varint(out, self.locks.len() as u64);
        for lock in &self.locks {
            wire::put_clock(out, lock);
        }
    }

    fn import_state(&mut self, bytes: &[u8]) -> Result<(), CheckpointError> {
        let mut r = WireReader::new(bytes);
        let n = checkpoint::get_count(&mut r)?;
        let mut threads = Vec::with_capacity(n);
        for _ in 0..n {
            threads.push(SharedVectorClock::from_clock(r.get_clock()?));
        }
        let n = checkpoint::get_count(&mut r)?;
        let mut locks = Vec::with_capacity(n);
        for _ in 0..n {
            locks.push(r.get_clock()?);
        }
        r.finish()?;
        self.threads = threads;
        self.locks = locks;
        Ok(())
    }
}

impl SyncEngine for VectorSyncEngine {
    type View = VectorClockSnapshot;

    fn ensure_thread(&mut self, tid: ThreadId) {
        while self.threads.len() <= tid.index() {
            let next = ThreadId::new(self.threads.len() as u32);
            // C_t ← ⊥[t ↦ 1]
            self.threads
                .push(SharedVectorClock::from_clock(VectorClock::bottom_with(
                    next, 1,
                )));
        }
    }

    fn acquire(&mut self, tid: ThreadId, lock: LockId, counters: &mut Counters) {
        counters.acquires += 1;
        counters.acquires_processed += 1;
        self.ensure_lock(lock);
        // Bottom fast path: a never-released lock carries ⊥ and cannot
        // teach the thread anything.
        let lock_clock = &self.locks[lock.index()];
        if !lock_clock.is_empty() {
            let (clock, deep) = self.threads[tid.index()].make_mut();
            if deep {
                counters.deep_copies += 1;
            }
            clock.join(lock_clock);
        }
        counters.vc_ops += 1;
        counters.entries_traversed += self.threads.len() as u64;
    }

    fn release(
        &mut self,
        tid: ThreadId,
        lock: LockId,
        _sampled_since_release: bool,
        counters: &mut Counters,
    ) {
        counters.releases += 1;
        counters.releases_processed += 1;
        self.ensure_lock(lock);
        // Cℓ ← C_t (straight memcpy; the change count is not needed),
        // then bump the local component.
        let (clock, deep) = self.threads[tid.index()].make_mut();
        if deep {
            counters.deep_copies += 1;
        }
        self.locks[lock.index()].assign_from(clock);
        clock.increment(tid);
        counters.vc_ops += 1;
        counters.entries_traversed += self.threads.len() as u64;
        counters.local_increments += 1;
    }

    fn publish(&mut self, tid: ThreadId) -> VectorClockSnapshot {
        self.threads[tid.index()].snapshot()
    }

    fn publish_dense(&mut self, tid: ThreadId, width_cap: usize, out: &mut Vec<Time>) {
        // `C_t[t] = e_t` already holds in a raw vector clock, so the
        // dense race-check view is a straight memcpy — no snapshot, no
        // refcount traffic, no per-entry walk.
        let times = self.threads[tid.index()].clock().times();
        let n = times.len().min(width_cap.max(tid.index() + 1));
        out.clear();
        out.extend_from_slice(&times[..n]);
        if out.len() <= tid.index() {
            out.resize(tid.index() + 1, 0);
        }
    }

    fn publish_dense_ref(&self, tid: ThreadId, width_cap: usize) -> Option<&[Time]> {
        // Zero-copy variant of the above: no splice is needed, so the
        // clock's own storage *is* the dense image.
        let times = self.threads[tid.index()].clock().times();
        if times.len() <= tid.index() {
            return None; // would need padding; take the scratch path
        }
        Some(&times[..times.len().min(width_cap.max(tid.index() + 1))])
    }

    fn reserve_threads(&mut self, n: usize) {
        if n == 0 {
            return;
        }
        let last = ThreadId::new(n as u32 - 1);
        self.ensure_thread(last);
        for clock in &mut self.threads {
            let (clock, _) = clock.make_mut();
            let pad = clock.get(last);
            clock.set(last, pad);
        }
    }
}

/// Algorithm 1 of the paper: the classical Djit+ vector-clock race
/// detector, extended with access-level sampling.
///
/// With [`AlwaysSampler`](freshtrack_sampling::AlwaysSampler) this is
/// exactly Djit+ (every access analyzed). With a real sampler it becomes
/// the paper's **ST** configuration — "the naive sampling algorithm
/// without optimizations on synchronization handlers": non-sampled
/// accesses are skipped entirely, but every acquire still performs an
/// `O(T)` join and every release an `O(T)` copy plus a local increment.
///
/// Internally the detector is a composition of its two planes — a
/// [`VectorSyncEngine`] for acquire/release and a
/// [`HistoryAccessEngine`] for read/write — the same halves a two-plane
/// [`ShardedOnlineDetector`](crate::ShardedOnlineDetector) distributes
/// across its sync lock and access shards (see [`SplitDetector`]), so
/// the sharded and monolithic semantics cannot drift apart.
///
/// # Example
///
/// ```
/// use freshtrack_core::{Detector, DjitDetector};
/// use freshtrack_sampling::AlwaysSampler;
/// use freshtrack_trace::TraceBuilder;
///
/// let mut b = TraceBuilder::new();
/// let x = b.var("x");
/// b.write(0, x);
/// b.write(1, x);
/// let races = DjitDetector::new(AlwaysSampler::new()).run(&b.build());
/// assert_eq!(races.len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct DjitDetector<S> {
    sync: VectorSyncEngine,
    access: HistoryAccessEngine<S>,
    counters: Counters,
}

impl<S: Sampler> DjitDetector<S> {
    /// Creates a detector using `sampler` to pick the sample set.
    pub fn new(sampler: S) -> Self {
        DjitDetector {
            sync: VectorSyncEngine::new(),
            access: HistoryAccessEngine::new(sampler),
            counters: Counters::new(),
        }
    }
}

impl<S: Sampler> Detector for DjitDetector<S> {
    fn process(&mut self, id: EventId, event: Event) -> Option<RaceReport> {
        // Hoisted-first: the sampling decision is pure in `(id, event)`,
        // so a skipped access is a tally and nothing else — no thread
        // admission, no clock reads (invariant 10).
        if let EventKind::Read(_) | EventKind::Write(_) = event.kind {
            if !self.access.decide(id, event) {
                self.counters.events += 1;
                plane::tally_access(&event, &mut self.counters);
                return None;
            }
        }
        self.process_admitted(id, event)
    }

    fn process_admitted(&mut self, id: EventId, event: Event) -> Option<RaceReport> {
        self.counters.events += 1;
        let tid = event.tid;
        match event.kind {
            EventKind::Read(_) | EventKind::Write(_) => {
                self.sync.ensure_thread(tid);
                let Self {
                    sync,
                    access,
                    counters,
                } = self;
                let clock = sync.thread_clock(tid);
                let view = BorrowedView {
                    lookup: |u| clock.get(u),
                    width: sync.thread_count(),
                };
                access
                    .access_sampled_with(id, event, &view, counters)
                    .report
            }
            EventKind::Acquire(lock) => {
                self.sync.ensure_thread(tid);
                self.sync.acquire(tid, lock, &mut self.counters);
                None
            }
            EventKind::Release(lock) => {
                self.sync.ensure_thread(tid);
                self.sync.release(tid, lock, false, &mut self.counters);
                None
            }
        }
    }

    fn counters(&self) -> &Counters {
        &self.counters
    }

    fn reserve_threads(&mut self, n: usize) {
        self.sync.reserve_threads(n);
    }

    fn name(&self) -> &'static str {
        "Djit+"
    }

    fn hoisted_decider(&self) -> Option<HoistedDecider> {
        let sampler = self.access.sampler().clone();
        Some(Box::new(move |id, event| sampler.decide(id, event)))
    }

    fn record_skipped_accesses(&mut self, reads: u64, writes: u64) {
        self.counters.fold_skipped_accesses(reads, writes);
    }
}

impl<S: Sampler + Clone + Send> SplitDetector for DjitDetector<S> {
    type Sync = VectorSyncEngine;
    type Access = HistoryAccessEngine<S>;
    type View = VectorClockSnapshot;

    fn split_sync(&self) -> VectorSyncEngine {
        VectorSyncEngine::new()
    }

    fn split_access(&self) -> Self::Access {
        self.access.clone()
    }
}

impl<S> CheckpointState for DjitDetector<S> {
    fn export_state(&self, out: &mut Vec<u8>) {
        checkpoint::put_detector(out, &self.sync, &self.access, &[], &self.counters);
    }

    fn import_state(&mut self, bytes: &[u8]) -> Result<(), CheckpointError> {
        let (sampled, counters) =
            checkpoint::get_detector(bytes, &mut self.sync, &mut self.access)?;
        if !sampled.is_empty() {
            return Err(wire::WireError::Invalid("RelAfter_S bits on a non-epoch engine").into());
        }
        self.counters = counters;
        Ok(())
    }
}

impl<S: Sampler> crate::SyncOps for DjitDetector<S> {
    fn release_store(&mut self, tid: u32, sync: LockId) {
        let tid = ThreadId::new(tid);
        self.sync.ensure_thread(tid);
        self.sync.release(tid, sync, false, &mut self.counters);
    }

    fn release_join(&mut self, tid: u32, sync: LockId) {
        self.sync
            .release_join(ThreadId::new(tid), sync, &mut self.counters);
    }

    fn acquire_sync(&mut self, tid: u32, sync: LockId) {
        let tid = ThreadId::new(tid);
        self.sync.ensure_thread(tid);
        self.sync.acquire(tid, sync, &mut self.counters);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freshtrack_sampling::AlwaysSampler;
    use freshtrack_trace::TraceBuilder;

    fn full() -> DjitDetector<AlwaysSampler> {
        DjitDetector::new(AlwaysSampler::new())
    }

    #[test]
    fn lock_protected_accesses_do_not_race() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let l = b.lock("l");
        b.acquire(0, l).write(0, x).release(0, l);
        b.acquire(1, l).write(1, x).release(1, l);
        assert!(full().run(&b.build()).is_empty());
    }

    #[test]
    fn unsynchronized_writes_race() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        b.write(0, x);
        b.write(1, x);
        let races = full().run(&b.build());
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].event.index(), 1);
        assert!(races[0].with_write);
    }

    #[test]
    fn read_read_is_not_a_race() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        b.read(0, x);
        b.read(1, x);
        assert!(full().run(&b.build()).is_empty());
    }

    #[test]
    fn write_after_unordered_read_races() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        b.read(0, x);
        b.write(1, x);
        let races = full().run(&b.build());
        assert_eq!(races.len(), 1);
        assert!(races[0].with_read);
        assert!(!races[0].with_write);
    }

    #[test]
    fn fork_edge_orders_accesses() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        b.write(0, x);
        b.fork(0, 1);
        b.write(1, x);
        assert!(full().run(&b.build()).is_empty());
    }

    #[test]
    fn join_edge_orders_accesses() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        b.fork(0, 1);
        b.write(1, x);
        b.join(0, 1);
        b.write(0, x);
        assert!(full().run(&b.build()).is_empty());
    }

    #[test]
    fn same_thread_accesses_never_race() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        b.write(0, x).read(0, x).write(0, x);
        assert!(full().run(&b.build()).is_empty());
    }

    #[test]
    fn lock_chain_provides_transitive_order() {
        // T0 writes under l; T1 relays via l→m; T2 reads under m.
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let l = b.lock("l");
        let m = b.lock("m");
        b.acquire(0, l).write(0, x).release(0, l);
        b.acquire(1, l).acquire(1, m).release(1, m).release(1, l);
        b.acquire(2, m).read(2, x).release(2, m);
        assert!(full().run(&b.build()).is_empty());
    }

    #[test]
    fn counters_track_sync_work() {
        let mut b = TraceBuilder::new();
        let l = b.lock("l");
        b.acquire(0, l).release(0, l);
        b.acquire(1, l).release(1, l);
        let mut d = full();
        d.run(&b.build());
        let c = d.counters();
        assert_eq!(c.acquires, 2);
        assert_eq!(c.releases, 2);
        assert_eq!(c.acquires_processed, 2);
        assert_eq!(c.releases_processed, 2);
        assert_eq!(c.local_increments, 2);
        assert_eq!(c.acquires_skipped, 0);
    }

    #[test]
    fn monolithic_clocks_never_deep_copy() {
        // A monolithic detector never publishes views, so its shared
        // thread clocks stay exclusively owned throughout.
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let l = b.lock("l");
        for t in 0..3 {
            b.acquire(t, l).write(t, x).release(t, l);
        }
        let mut d = full();
        d.run(&b.build());
        assert_eq!(d.counters().deep_copies, 0);
    }
}
