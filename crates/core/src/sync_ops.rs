//! Non-mutex synchronization handlers (Appendix A.2 of the paper).
//!
//! ThreadSanitizer distinguishes three synchronization handler semantics
//! beyond plain mutexes:
//!
//! * **ReleaseStore** — the sync object's clock becomes a *copy* of the
//!   thread's (mutex unlock, atomic release-store, thread fork). The
//!   paper's Algorithm 4 innovations (shallow copy, scalar freshness)
//!   apply unchanged, because the object carries a single thread's
//!   snapshot.
//! * **Release** (join) — the sync object *accumulates* clocks from
//!   multiple releasers (shared-lock unlock, barriers, RMW/CAS release
//!   sequences). Here the object's clock is not any one thread's
//!   snapshot, so the freshness skip does not apply; handlers fall back
//!   to full `O(T)` joins, as the paper prescribes.
//! * **Acquire** — the thread joins the object's clock; it can use the
//!   freshness/ordered-list fast path only when the object's last update
//!   was a ReleaseStore.
//!
//! [`SyncOps`] exposes these handlers on the detectors that support
//! them; [`SyncClock`] is the reusable per-object state machine.

use freshtrack_clock::OrderedList;
use freshtrack_trace::LockId;

/// Extended synchronization operations in the style of TSan's handler
/// set (Appendix A.2).
///
/// Sync objects share the [`LockId`] space with mutexes; a given id
/// should be used either as a mutex (via trace events) or as a generic
/// sync object (via these methods), not both concurrently.
pub trait SyncOps {
    /// `ReleaseStore`: the object's clock becomes the thread's snapshot.
    fn release_store(&mut self, tid: u32, sync: LockId);

    /// `Release` (join): the object's clock accumulates the thread's.
    fn release_join(&mut self, tid: u32, sync: LockId);

    /// `Acquire`: the thread's clock joins the object's.
    fn acquire_sync(&mut self, tid: u32, sync: LockId);
}

/// The clock state of a generic synchronization object.
///
/// `Joined` is entered by a `Release` (join) operation and makes
/// subsequent acquires ineligible for the freshness skip until the next
/// `ReleaseStore` overwrites the object.
#[derive(Clone, Debug, Default)]
pub enum SyncClock {
    /// Never released: carries `⊥`.
    #[default]
    Bottom,
    /// Last updated by a `ReleaseStore`; detector-specific snapshot state
    /// lives alongside (e.g. the lazy list reference in Algorithm 4).
    Store,
    /// Accumulating joins from multiple releasers.
    Joined(OrderedList),
}

impl SyncClock {
    /// Returns `true` if the object is in accumulating (`Joined`) mode.
    pub fn is_joined(&self) -> bool {
        matches!(self, SyncClock::Joined(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Detector, DjitDetector, OrderedListDetector};
    use freshtrack_sampling::AlwaysSampler;
    use freshtrack_trace::{Event, EventId, EventKind, ThreadId, VarId};

    /// Drives accesses through `process` and sync ops through `SyncOps`,
    /// so Djit+ and SO can be compared on non-mutex synchronization.
    struct Driver<D> {
        detector: D,
        next: u64,
        races: Vec<EventId>,
    }

    impl<D: Detector + SyncOps> Driver<D> {
        fn new(detector: D) -> Self {
            Driver {
                detector,
                next: 0,
                races: Vec::new(),
            }
        }

        fn write(&mut self, tid: u32, var: u32) {
            let id = EventId::new(self.next);
            self.next += 1;
            let e = Event::new(ThreadId::new(tid), EventKind::Write(VarId::new(var)));
            if self.detector.process(id, e).is_some() {
                self.races.push(id);
            }
        }

        fn read(&mut self, tid: u32, var: u32) {
            let id = EventId::new(self.next);
            self.next += 1;
            let e = Event::new(ThreadId::new(tid), EventKind::Read(VarId::new(var)));
            if self.detector.process(id, e).is_some() {
                self.races.push(id);
            }
        }
    }

    fn sync(i: u32) -> LockId {
        LockId::new(i)
    }

    /// Runs the same script against Djit+, SU and SO, asserting they
    /// agree, and returns the common race positions.
    fn on_all_engines<F>(script: F) -> Vec<EventId>
    where
        F: Fn(&mut dyn ScriptTarget) -> Vec<EventId>,
    {
        let mut djit = Driver::new(DjitDetector::new(AlwaysSampler::new()));
        let mut su = Driver::new(crate::FreshnessDetector::new(AlwaysSampler::new()));
        let mut so = Driver::new(OrderedListDetector::new(AlwaysSampler::new()));
        let a = script(&mut djit);
        let b = script(&mut su);
        let c = script(&mut so);
        assert_eq!(a, b, "Djit+ vs SU");
        assert_eq!(a, c, "Djit+ vs SO");
        a
    }

    /// Object-safe script surface over any engine driver.
    trait ScriptTarget {
        fn write(&mut self, tid: u32, var: u32);
        fn read(&mut self, tid: u32, var: u32);
        fn release_store(&mut self, tid: u32, sync: LockId);
        fn release_join(&mut self, tid: u32, sync: LockId);
        fn acquire_sync(&mut self, tid: u32, sync: LockId);
        fn races(&self) -> Vec<EventId>;
    }

    impl<D: Detector + SyncOps> ScriptTarget for Driver<D> {
        fn write(&mut self, tid: u32, var: u32) {
            Driver::write(self, tid, var);
        }
        fn read(&mut self, tid: u32, var: u32) {
            Driver::read(self, tid, var);
        }
        fn release_store(&mut self, tid: u32, sync: LockId) {
            self.detector.release_store(tid, sync);
        }
        fn release_join(&mut self, tid: u32, sync: LockId) {
            self.detector.release_join(tid, sync);
        }
        fn acquire_sync(&mut self, tid: u32, sync: LockId) {
            self.detector.acquire_sync(tid, sync);
        }
        fn races(&self) -> Vec<EventId> {
            self.races.clone()
        }
    }

    #[test]
    fn release_store_orders_message_passing() {
        // T0 writes x, release-stores to an atomic; T1 acquires it and
        // reads x: no race (the classic message-passing pattern).
        let races = on_all_engines(|d| {
            d.write(0, 0);
            d.release_store(0, sync(0));
            d.acquire_sync(1, sync(0));
            d.read(1, 0);
            d.races()
        });
        assert!(races.is_empty(), "{races:?}");
    }

    #[test]
    fn repeated_store_acquire_chains_stay_exact() {
        // Ping-pong message passing with interleaved unrelated races —
        // all three engines must agree event-for-event.
        let races = on_all_engines(|d| {
            for round in 0..6u32 {
                let (from, to) = (round % 2, (round + 1) % 2);
                d.write(from, round % 3);
                d.release_store(from, sync(0));
                d.acquire_sync(to, sync(0));
                d.read(to, round % 3);
            }
            d.write(2, 0); // thread 2 never synchronizes: races
            d.races()
        });
        assert_eq!(races.len(), 1);
    }

    #[test]
    fn missing_acquire_still_races() {
        let mut d = Driver::new(OrderedListDetector::new(AlwaysSampler::new()));
        d.write(0, 0);
        d.detector.release_store(0, sync(0));
        // T1 never acquires the atomic: the read races.
        d.read(1, 0);
        assert_eq!(d.races.len(), 1);
    }

    #[test]
    fn release_join_accumulates_multiple_releasers() {
        // Barrier-ish: T0 and T1 both write then release-join into the
        // same object; T2 acquires once and reads both — no races.
        let races = on_all_engines(|d| {
            d.write(0, 0);
            d.write(1, 1);
            d.release_join(0, sync(0));
            d.release_join(1, sync(0));
            d.acquire_sync(2, sync(0));
            d.read(2, 0);
            d.read(2, 1);
            d.races()
        });
        assert!(races.is_empty(), "{races:?}");
    }

    #[test]
    fn mixed_store_and_join_sequences_agree_across_engines() {
        let races = on_all_engines(|d| {
            d.write(0, 0);
            d.release_join(0, sync(1));
            d.write(1, 1);
            d.release_store(1, sync(1)); // store overwrites the join
            d.acquire_sync(2, sync(1));
            d.read(2, 1); // ordered via the store
            d.read(2, 0); // NOT ordered: join info was overwritten
            d.release_join(2, sync(2));
            d.acquire_sync(0, sync(2));
            d.read(0, 1); // ordered transitively via T2
            d.races()
        });
        assert_eq!(races.len(), 1);
    }

    #[test]
    fn release_store_after_join_resets_to_snapshot() {
        let mut d = Driver::new(OrderedListDetector::new(AlwaysSampler::new()));
        d.write(0, 0);
        d.detector.release_join(0, sync(0));
        d.write(1, 1);
        d.detector.release_store(1, sync(0));
        // The store overwrote the join: T2 sees T1's history…
        d.detector.acquire_sync(2, sync(0));
        d.read(2, 1);
        assert!(d.races.is_empty());
        // …but T1's snapshot was taken after T1 acquired nothing from
        // T0, so T0's write is NOT ordered — reading x races.
        d.read(2, 0);
        assert_eq!(d.races.len(), 1);
    }

    #[test]
    fn repeated_acquires_of_store_are_skippable_by_so() {
        let mut d = Driver::new(OrderedListDetector::new(AlwaysSampler::new()));
        d.write(0, 0);
        d.detector.release_store(0, sync(0));
        for _ in 0..10 {
            d.detector.acquire_sync(1, sync(0));
        }
        d.read(1, 0);
        assert!(d.races.is_empty());
        // Only the first acquire learns anything.
        assert_eq!(d.detector.counters().acquires_processed, 1);
        assert_eq!(d.detector.counters().acquires_skipped, 9);
    }

    #[test]
    fn sync_clock_mode_transitions() {
        let mut c = SyncClock::default();
        assert!(!c.is_joined());
        c = SyncClock::Joined(OrderedList::new());
        assert!(c.is_joined());
        c = SyncClock::Store;
        assert!(!c.is_joined());
        let _ = c;
    }
}
