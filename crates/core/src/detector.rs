use freshtrack_trace::{Event, EventId, Trace};

use crate::{Counters, RaceReport};

/// A streaming happens-before race detector.
///
/// Detectors consume one event at a time in trace order, mirroring the
/// callback structure of online tools like ThreadSanitizer. [`run`]
/// drives a whole [`Trace`] through the detector and collects the
/// reports.
///
/// The event loop has a natural seam between synchronization handling
/// (thread/lock clocks — global state) and access handling
/// (per-variable histories — partitionable state). Engines that expose
/// that seam additionally implement
/// [`SplitDetector`](crate::SplitDetector), which is how
/// [`ShardedOnlineDetector`](crate::ShardedOnlineDetector) distributes
/// them across one sync engine and many access shards; their monolithic
/// `process` is a composition of the same two halves.
///
/// [`run`]: Detector::run
pub trait Detector {
    /// Processes one event; returns a report if the event races with the
    /// recorded access history.
    fn process(&mut self, id: EventId, event: Event) -> Option<RaceReport>;

    /// The work counters accumulated so far.
    fn counters(&self) -> &Counters;

    /// A short engine name (`"Djit+"`, `"SU"`, `"SO"`, …) for reports.
    fn name(&self) -> &'static str;

    /// Pre-sizes clock state for `n` threads, like ThreadSanitizer's
    /// fixed-width (256-entry) vector clocks.
    ///
    /// Without reservation, clocks grow lazily with the highest thread
    /// id observed, which under-states the `O(T)` cost real sanitizers
    /// pay per synchronization event. Online experiments call this with
    /// the sanitizer's configured width; it never changes verdicts.
    fn reserve_threads(&mut self, _n: usize) {}

    /// Runs the detector over a complete trace, returning all reports.
    ///
    /// Reports are **strictly sorted by racing [`EventId`]**: events are
    /// processed in trace order, a report's `event` field is the event
    /// being processed, and each event yields at most one report. The
    /// sharded ingestion merge
    /// ([`ShardedOnlineDetector::finish`](crate::ShardedOnlineDetector::finish))
    /// and the differential suites both rely on this order being
    /// deterministic; `crates/core/tests/sharding.rs` has the
    /// regression test.
    fn run(&mut self, trace: &Trace) -> Vec<RaceReport> {
        let mut reports: Vec<RaceReport> = Vec::new();
        for (id, event) in trace.iter() {
            if let Some(report) = self.process(id, event) {
                debug_assert!(
                    reports
                        .last()
                        .map_or(true, |prev| prev.event < report.event),
                    "reports must stay sorted by EventId"
                );
                reports.push(report);
            }
        }
        reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DjitDetector;
    use freshtrack_sampling::AlwaysSampler;
    use freshtrack_trace::TraceBuilder;

    #[test]
    fn run_collects_reports_in_order() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        b.write(0, x).write(0, y);
        b.write(1, x).write(1, y);
        let trace = b.build();
        let mut d = DjitDetector::new(AlwaysSampler::new());
        let reports = d.run(&trace);
        assert_eq!(reports.len(), 2);
        assert!(reports[0].event < reports[1].event);
    }
}
