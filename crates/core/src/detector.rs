use freshtrack_trace::{Event, EventId, EventSource, SourceError, Trace};

use crate::{Counters, RaceReport};

/// A sampling decision extracted from a detector, callable from any
/// thread without holding the detector's lock — see
/// [`Detector::hoisted_decider`].
pub type HoistedDecider = Box<dyn Fn(EventId, Event) -> bool + Send + Sync>;

/// A streaming happens-before race detector.
///
/// Detectors consume one event at a time in trace order, mirroring the
/// callback structure of online tools like ThreadSanitizer. [`run`]
/// drives a whole [`Trace`] through the detector and collects the
/// reports.
///
/// The event loop has a natural seam between synchronization handling
/// (thread/lock clocks — global state) and access handling
/// (per-variable histories — partitionable state). Engines that expose
/// that seam additionally implement
/// [`SplitDetector`](crate::SplitDetector), which is how
/// [`ShardedOnlineDetector`](crate::ShardedOnlineDetector) distributes
/// them across one sync engine and many access shards; their monolithic
/// `process` is a composition of the same two halves.
///
/// [`run`]: Detector::run
pub trait Detector {
    /// Processes one event; returns a report if the event races with the
    /// recorded access history.
    fn process(&mut self, id: EventId, event: Event) -> Option<RaceReport>;

    /// Like [`process`](Detector::process), but for an **access event
    /// the caller has already admitted** through this detector's
    /// [`hoisted_decider`](Detector::hoisted_decider) (with the same
    /// `id`). The façades call this on the sampled side of the lock-free
    /// skip path so the pure `(seed, EventId)` decision is computed
    /// exactly once per access — outside the lock — instead of again
    /// inside `process`.
    ///
    /// The default forwards to [`process`](Detector::process), which
    /// re-decides: correct for every detector (the decision is pure, so
    /// it re-derives the same verdict — invariant 4), just redundant.
    /// Detectors that expose a decider override it with the post-decision
    /// body of `process`. Sync events must go through
    /// [`process`](Detector::process); behavior is unspecified for an
    /// access the decider would have rejected.
    fn process_admitted(&mut self, id: EventId, event: Event) -> Option<RaceReport> {
        self.process(id, event)
    }

    /// The work counters accumulated so far.
    fn counters(&self) -> &Counters;

    /// A short engine name (`"Djit+"`, `"SU"`, `"SO"`, …) for reports.
    fn name(&self) -> &'static str;

    /// Pre-sizes clock state for `n` threads, like ThreadSanitizer's
    /// fixed-width (256-entry) vector clocks.
    ///
    /// Without reservation, clocks grow lazily with the highest thread
    /// id observed, which under-states the `O(T)` cost real sanitizers
    /// pay per synchronization event. Online experiments call this with
    /// the sanitizer's configured width; it never changes verdicts.
    fn reserve_threads(&mut self, _n: usize) {}

    /// Extracts this detector's sampling decision as a standalone pure
    /// function of `(id, event)`, if it has one.
    ///
    /// The online façades use the extracted decider to reject
    /// sampled-out accesses *before* taking the analysis lock — the
    /// lock-free skip path (ARCHITECTURE.md invariant 10). The decider
    /// must agree with what [`process`](Detector::process) would decide
    /// for the same access, and [`process`](Detector::process) must
    /// treat a skipped access as a pure tally (no clock or history
    /// mutation), so running either path yields identical state.
    ///
    /// Detectors returning `Some` must also implement
    /// [`record_skipped_accesses`](Detector::record_skipped_accesses),
    /// which folds the accesses the façade short-circuited back into
    /// [`counters`](Detector::counters). The default (`None`) keeps the
    /// façades on the locked path.
    fn hoisted_decider(&self) -> Option<HoistedDecider> {
        None
    }

    /// Folds accesses that a façade skipped without calling
    /// [`process`](Detector::process) back into this detector's
    /// [`counters`](Detector::counters): `reads`/`writes` sampled-out
    /// accesses must bump the read/write/event tallies exactly as the
    /// inline skip path would have.
    ///
    /// Only called when [`hoisted_decider`](Detector::hoisted_decider)
    /// returned `Some`; the default panics to catch detectors that
    /// expose a decider without the matching fold.
    fn record_skipped_accesses(&mut self, reads: u64, writes: u64) {
        assert!(
            reads == 0 && writes == 0,
            "detector exposes hoisted_decider but not record_skipped_accesses"
        );
    }

    /// Runs the detector over a streaming [`EventSource`], returning all
    /// reports — the primary analysis loop; detectors never require a
    /// materialized trace.
    ///
    /// Events are numbered by stream position ([`EventId`] = position),
    /// so analyzing a trace file streamed from disk and analyzing the
    /// same trace materialized produce identical reports. Reports are
    /// **strictly sorted by racing [`EventId`]**: events are processed
    /// in stream order, a report's `event` field is the event being
    /// processed, and each event yields at most one report. The sharded
    /// ingestion merge
    /// ([`ShardedOnlineDetector::finish`](crate::ShardedOnlineDetector::finish))
    /// and the differential suites both rely on this order being
    /// deterministic; `crates/core/tests/sharding.rs` has the
    /// regression test.
    ///
    /// # Errors
    ///
    /// Propagates the first error the source reports (reports gathered
    /// up to that point are dropped with it — a partial analysis of a
    /// malformed input is not a verdict).
    fn run_source(&mut self, source: &mut dyn EventSource) -> Result<Vec<RaceReport>, SourceError> {
        self.run_source_from(source, 0)
    }

    /// Like [`run_source`](Detector::run_source), but numbers the
    /// source's first event `first_id` instead of `0` — the resume entry
    /// point for checkpointed analysis: restore detector state with
    /// [`CheckpointState::import_state`](crate::CheckpointState::import_state),
    /// then continue from a segment's event range as if the stream had
    /// never been interrupted.
    ///
    /// # Errors
    ///
    /// Propagates the first error the source reports, exactly as
    /// [`run_source`](Detector::run_source) does.
    fn run_source_from(
        &mut self,
        source: &mut dyn EventSource,
        first_id: u64,
    ) -> Result<Vec<RaceReport>, SourceError> {
        let mut reports: Vec<RaceReport> = Vec::new();
        let mut next_id: u64 = first_id;
        while let Some(event) = source.next_event()? {
            let id = EventId::new(next_id);
            next_id += 1;
            if let Some(report) = self.process(id, event) {
                debug_assert!(
                    reports
                        .last()
                        .map_or(true, |prev| prev.event < report.event),
                    "reports must stay sorted by EventId"
                );
                reports.push(report);
            }
        }
        Ok(reports)
    }

    /// Runs the detector over a complete trace, returning all reports.
    ///
    /// A thin wrapper over [`run_source`](Detector::run_source) driving
    /// the trace's [`EventSource`] view; the two paths are the same loop
    /// by construction.
    fn run(&mut self, trace: &Trace) -> Vec<RaceReport> {
        self.run_source(&mut trace.source())
            .expect("materialized traces never fail to stream")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DjitDetector;
    use freshtrack_sampling::AlwaysSampler;
    use freshtrack_trace::TraceBuilder;

    #[test]
    fn run_source_matches_run_over_a_streamed_text_trace() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let l = b.lock("l");
        b.acquire(0, l).write(0, x).release(0, l);
        b.write(1, x);
        b.write(0, x);
        let trace = b.build();
        let text = freshtrack_trace::write_trace(&trace);

        let materialized = DjitDetector::new(AlwaysSampler::new()).run(&trace);
        let mut reader = freshtrack_trace::EventReader::new(text.as_bytes());
        let streamed = DjitDetector::new(AlwaysSampler::new())
            .run_source(&mut reader)
            .unwrap();
        assert_eq!(materialized, streamed);
        assert!(!streamed.is_empty());
    }

    #[test]
    fn run_source_propagates_parse_errors() {
        let mut reader = freshtrack_trace::EventReader::new(&b"T0|w(x)\nbogus\n"[..]);
        let err = DjitDetector::new(AlwaysSampler::new())
            .run_source(&mut reader)
            .unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn run_collects_reports_in_order() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        b.write(0, x).write(0, y);
        b.write(1, x).write(1, y);
        let trace = b.build();
        let mut d = DjitDetector::new(AlwaysSampler::new());
        let reports = d.run(&trace);
        assert_eq!(reports.len(), 2);
        assert!(reports[0].event < reports[1].event);
    }
}
