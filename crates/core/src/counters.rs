use std::fmt;
use std::ops::AddAssign;
use std::sync::atomic::{AtomicU64, Ordering};

/// Deterministic work counters maintained by every detector.
///
/// The paper's evaluation is largely phrased in these quantities: how
/// many synchronization events were *skipped* versus *processed*
/// (Fig. 6(b), Fig. 7), how many deep copies the lazy-copy protocol paid
/// (Fig. 8), and how many ordered-list entries were traversed versus
/// saved (Fig. 6(c), Fig. 9). Counting them exactly — rather than only
/// measuring wall-clock time — makes runs reproducible and
/// machine-independent.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Total events handed to the detector.
    pub events: u64,
    /// Read events observed.
    pub reads: u64,
    /// Write events observed.
    pub writes: u64,
    /// Access events that were sampled into `S`.
    pub sampled_accesses: u64,
    /// Acquire events observed.
    pub acquires: u64,
    /// Release events observed.
    pub releases: u64,
    /// Acquires whose vector-clock work was skipped entirely
    /// (freshness check proved the message redundant).
    pub acquires_skipped: u64,
    /// Acquires that performed clock work (join or partial traversal).
    pub acquires_processed: u64,
    /// Releases whose clock transfer was skipped (SU) or that needed no
    /// local flush (SO with nothing sampled since the last release).
    pub releases_skipped: u64,
    /// Releases that performed an `O(T)` clock copy (Djit+/FT/ST/SU).
    pub releases_processed: u64,
    /// `O(1)` shallow copies performed at releases (SO).
    pub shallow_copies: u64,
    /// Deep copies forced by mutation-while-shared (SO).
    pub deep_copies: u64,
    /// Local-epoch increments (`RelAfter_S` releases; every release for
    /// Djit+/FT).
    pub local_increments: u64,
    /// Individual clock entries examined during sync-event clock work.
    pub entries_traversed: u64,
    /// Entries *not* examined thanks to the ordered list (`Σ (T − d)`
    /// over non-skipped acquires) — the numerator of Fig. 9.
    pub entries_saved: u64,
    /// Number of `O(T)` vector-clock operations performed.
    pub vc_ops: u64,
    /// Race checks executed at sampled accesses.
    pub race_checks: u64,
    /// Races reported.
    pub races: u64,
}

impl Counters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Access events observed (reads + writes).
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Access events rejected by the sampler — the lock-free skip path's
    /// traffic (accesses − sampled).
    pub fn skipped_accesses(&self) -> u64 {
        self.accesses().saturating_sub(self.sampled_accesses)
    }

    /// Fraction of accesses that took the skip path — the headline
    /// number of the hoisted-decision fast path (invariant 10). Zero
    /// when no accesses.
    pub fn skip_ratio(&self) -> f64 {
        ratio(self.skipped_accesses(), self.accesses())
    }

    /// Folds accesses short-circuited by a hoisted sampling decision
    /// back into the observation tallies: each skipped access counts as
    /// one event plus one read or write, exactly as the inline skip
    /// path tallies it. Bit-exact with inline processing by
    /// construction — a skipped access touches no other field.
    pub fn fold_skipped_accesses(&mut self, reads: u64, writes: u64) {
        self.events += reads + writes;
        self.reads += reads;
        self.writes += writes;
    }

    /// Synchronization events observed (acquires + releases).
    pub fn syncs(&self) -> u64 {
        self.acquires + self.releases
    }

    /// Fraction of acquires skipped (Fig. 7). Zero when no acquires.
    pub fn acquire_skip_ratio(&self) -> f64 {
        ratio(self.acquires_skipped, self.acquires)
    }

    /// Fraction of releases that performed an `O(T)` copy — the SU series
    /// of Fig. 8.
    pub fn release_processed_ratio(&self) -> f64 {
        ratio(self.releases_processed, self.releases)
    }

    /// Deep copies over total releases — the SO series of Fig. 8.
    pub fn deep_copy_ratio(&self) -> f64 {
        ratio(self.deep_copies, self.releases)
    }

    /// `SavedTraversals / AllTraversals` over non-skipped acquires — the
    /// saving ratio of Fig. 9.
    pub fn saving_ratio(&self) -> f64 {
        ratio(
            self.entries_saved,
            self.entries_saved + self.entries_traversed,
        )
    }

    /// Average clock entries traversed per acquire — the y-axis of
    /// Fig. 6(c).
    pub fn traversals_per_acquire(&self) -> f64 {
        if self.acquires == 0 {
            0.0
        } else {
            self.entries_traversed as f64 / self.acquires as f64
        }
    }

    /// Fraction of sync events that performed an `O(T)` operation — the
    /// y/x slope of Fig. 6(b).
    pub fn sync_handled_ratio(&self) -> f64 {
        ratio(
            self.acquires_processed + self.releases_processed,
            self.syncs(),
        )
    }

    /// Aggregates per-shard counters from a **replicated-sync** sharded
    /// run ([`SyncMode::Replicated`](crate::SyncMode::Replicated)) into
    /// one view comparable with an unsharded run. (The two-plane
    /// [`SyncMode::Shared`](crate::SyncMode::Shared) construction needs
    /// no such special-casing: its planes partition the event space, so
    /// its counters combine with plain `+=`.)
    ///
    /// Two kinds of fields are treated differently:
    ///
    /// * **Observation counts** (`acquires`, `releases`, and through
    ///   them `events`): every shard observes every sync event, so these
    ///   are counted **once** (all shards must agree; checked in debug
    ///   builds). Access observations (`reads`, `writes`,
    ///   `sampled_accesses`, `races`, …) partition across shards and are
    ///   summed.
    /// * **Work counts** (`vc_ops`, `entries_traversed`, `deep_copies`,
    ///   skip/processed tallies, …): summed across shards — the honest
    ///   total cost, which for sync-event clock work is up to `N×` the
    ///   unsharded amount (the replication fan-out). Consequently,
    ///   per-sync structural identities such as `acquires_skipped +
    ///   acquires_processed == acquires` hold per shard but **not** on
    ///   the merged value.
    ///
    /// The merge is **order-independent** across shard permutations
    /// (max/first-of-equal for observation counts — the shards must
    /// agree, checked in debug builds — plus commutative sums), which
    /// `crates/core/tests/sharding.rs` pins with a proptest.
    ///
    /// Returns zeroed counters for an empty iterator.
    pub fn merge(shards: impl IntoIterator<Item = Counters>) -> Counters {
        let mut merged = Counters::new();
        let mut first: Option<Counters> = None;
        for c in shards {
            if let Some(f) = &first {
                debug_assert_eq!(f.acquires, c.acquires, "shards disagree on acquire count");
                debug_assert_eq!(f.releases, c.releases, "shards disagree on release count");
            } else {
                first = Some(c);
            }
            merged += c;
        }
        if let Some(f) = first {
            // Sync events are replicated to every shard; observe each once.
            merged.acquires = f.acquires;
            merged.releases = f.releases;
            merged.events = merged.reads + merged.writes + merged.acquires + merged.releases;
        }
        merged
    }
}

/// One cache line of skip tallies. Padding to 64 bytes keeps stripes on
/// distinct lines, so concurrent bumps from different threads do not
/// false-share.
#[derive(Debug, Default)]
#[repr(align(64))]
struct SkipStripe {
    reads: AtomicU64,
    writes: AtomicU64,
}

/// Striped atomic tallies for accesses rejected on the lock-free skip
/// path — the *only* shared state a sampled-out access touches
/// (invariant 10). Stripes are indexed by accessor thread id, so the
/// common case is an uncontended `fetch_add` on a thread-private cache
/// line; totals are folded into [`Counters`] once, at `finish()`, via
/// [`Counters::fold_skipped_accesses`] — bit-exact with having tallied
/// inline.
#[derive(Debug)]
pub(crate) struct SkipCells {
    stripes: Box<[SkipStripe]>,
}

impl SkipCells {
    /// Stripe count; power of two so the index is a mask.
    const STRIPES: usize = 16;

    pub(crate) fn new() -> Self {
        SkipCells {
            stripes: (0..Self::STRIPES).map(|_| SkipStripe::default()).collect(),
        }
    }

    #[inline]
    fn stripe(&self, tid: u32) -> &SkipStripe {
        &self.stripes[tid as usize & (Self::STRIPES - 1)]
    }

    /// Tallies one skipped read by `tid`.
    #[inline]
    pub(crate) fn bump_read(&self, tid: u32) {
        self.stripe(tid).reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Tallies one skipped write by `tid`.
    #[inline]
    pub(crate) fn bump_write(&self, tid: u32) {
        self.stripe(tid).writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Drains the `(reads, writes)` totals. Callers fold them exactly
    /// once, after all feeding threads have quiesced.
    pub(crate) fn totals(&self) -> (u64, u64) {
        self.stripes.iter().fold((0, 0), |(r, w), s| {
            (
                r + s.reads.load(Ordering::Relaxed),
                w + s.writes.load(Ordering::Relaxed),
            )
        })
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl AddAssign for Counters {
    fn add_assign(&mut self, rhs: Counters) {
        self.events += rhs.events;
        self.reads += rhs.reads;
        self.writes += rhs.writes;
        self.sampled_accesses += rhs.sampled_accesses;
        self.acquires += rhs.acquires;
        self.releases += rhs.releases;
        self.acquires_skipped += rhs.acquires_skipped;
        self.acquires_processed += rhs.acquires_processed;
        self.releases_skipped += rhs.releases_skipped;
        self.releases_processed += rhs.releases_processed;
        self.shallow_copies += rhs.shallow_copies;
        self.deep_copies += rhs.deep_copies;
        self.local_increments += rhs.local_increments;
        self.entries_traversed += rhs.entries_traversed;
        self.entries_saved += rhs.entries_saved;
        self.vc_ops += rhs.vc_ops;
        self.race_checks += rhs.race_checks;
        self.races += rhs.races;
    }
}

impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "events={} sampled={} skipped={} (skip {:.1}%) acq={} (skipped {:.1}%) rel={} (processed {:.1}%)",
            self.events,
            self.sampled_accesses,
            self.skipped_accesses(),
            100.0 * self.skip_ratio(),
            self.acquires,
            100.0 * self.acquire_skip_ratio(),
            self.releases,
            100.0 * self.release_processed_ratio(),
        )?;
        write!(
            f,
            "vc_ops={} deep={} shallow={} traversed={} saved={} races={}",
            self.vc_ops,
            self.deep_copies,
            self.shallow_copies,
            self.entries_traversed,
            self.entries_saved,
            self.races
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_zero_denominators() {
        let c = Counters::new();
        assert_eq!(c.acquire_skip_ratio(), 0.0);
        assert_eq!(c.saving_ratio(), 0.0);
        assert_eq!(c.traversals_per_acquire(), 0.0);
    }

    #[test]
    fn ratios_compute_fractions() {
        let c = Counters {
            acquires: 10,
            acquires_skipped: 4,
            acquires_processed: 6,
            releases: 5,
            releases_processed: 2,
            deep_copies: 1,
            entries_traversed: 30,
            entries_saved: 90,
            ..Counters::new()
        };
        assert!((c.acquire_skip_ratio() - 0.4).abs() < 1e-12);
        assert!((c.release_processed_ratio() - 0.4).abs() < 1e-12);
        assert!((c.deep_copy_ratio() - 0.2).abs() < 1e-12);
        assert!((c.saving_ratio() - 0.75).abs() < 1e-12);
        assert!((c.traversals_per_acquire() - 3.0).abs() < 1e-12);
        assert!((c.sync_handled_ratio() - 8.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn merge_counts_replicated_syncs_once_and_sums_work() {
        let shard = |reads: u64, vc_ops: u64| Counters {
            reads,
            writes: 1,
            acquires: 10,
            releases: 10,
            vc_ops,
            ..Counters::new()
        };
        let merged = Counters::merge([shard(3, 100), shard(5, 40)]);
        assert_eq!(merged.reads, 8);
        assert_eq!(merged.writes, 2);
        assert_eq!(merged.acquires, 10); // once, not 20
        assert_eq!(merged.releases, 10);
        assert_eq!(merged.events, 8 + 2 + 10 + 10);
        assert_eq!(merged.vc_ops, 140); // total work across shards
        assert_eq!(Counters::merge([]), Counters::new());
    }

    #[test]
    fn add_assign_sums_fields() {
        let mut a = Counters {
            events: 1,
            races: 2,
            ..Counters::new()
        };
        let b = Counters {
            events: 3,
            races: 1,
            deep_copies: 7,
            ..Counters::new()
        };
        a += b;
        assert_eq!(a.events, 4);
        assert_eq!(a.races, 3);
        assert_eq!(a.deep_copies, 7);
    }
}
