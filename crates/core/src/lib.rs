//! Sampling-aware happens-before race detectors.
//!
//! This crate implements the algorithms of *"Efficient Timestamping for
//! Sampling-Based Race Detection"* (PLDI 2025), plus the two classical
//! baselines they are measured against:
//!
//! | Engine | Paper | Type |
//! |---|---|---|
//! | [`DjitDetector`] | Algorithm 1 (Djit+) | baseline; with a sampler = the naive **ST** configuration |
//! | [`FastTrackDetector`] | FastTrack | epoch-optimized baseline (**FT**) |
//! | [`NaiveSamplingDetector`] | Algorithm 2 | sampling timestamps `C_sam` |
//! | [`FreshnessDetector`] | Algorithm 3 (**SU**) | + freshness timestamps `U` |
//! | [`OrderedListDetector`] | Algorithm 4 (**SO**) | + ordered lists & lazy copies |
//!
//! All engines implement [`Detector`] and are generic over a
//! [`Sampler`](freshtrack_sampling::Sampler) that decides the sample set
//! `S` online. Given the same sample set, the four sampling engines
//! produce **identical** race reports (Lemmas 4, 7 and 8 of the paper) —
//! a property the test suite checks exhaustively; they differ only in how
//! much timestamping work they perform, which is recorded in
//! [`Counters`].
//!
//! Every engine is internally a composition of its two planes — a
//! [`SyncEngine`] owning the thread/lock clocks and an [`AccessEngine`]
//! owning per-variable histories (the [`SplitDetector`] seam) — so the
//! same halves serve the monolithic detectors and sharded ingestion
//! without semantic drift.
//!
//! For concurrent ingestion two thread-safe façades wrap a detector:
//! [`OnlineDetector`] (one serialization mutex — the paper-faithful
//! contention model of Fig. 5) and [`ShardedOnlineDetector`]
//! (per-variable access shards around a shared sync plane — same
//! verdicts, parallel access analysis; the replicated-sync construction
//! of PR 3 remains available via [`SyncMode::Replicated`]).
//!
//! # Example
//!
//! ```
//! use freshtrack_core::{Detector, FreshnessDetector, OrderedListDetector};
//! use freshtrack_sampling::BernoulliSampler;
//! use freshtrack_trace::TraceBuilder;
//!
//! let mut b = TraceBuilder::new();
//! let x = b.var("x");
//! b.write(0, x);
//! b.write(1, x); // unsynchronized conflicting write
//! let trace = b.build();
//!
//! let sampler = BernoulliSampler::new(1.0, 42);
//! let mut su = FreshnessDetector::new(sampler);
//! let mut so = OrderedListDetector::new(sampler);
//! assert_eq!(su.run(&trace), so.run(&trace));
//! assert_eq!(su.counters().races, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod access_history;
mod checkpoint;
mod counters;
mod detector;
mod djit;
mod fasttrack;
mod freshness;
mod hb_oracle;
mod naive_sampling;
mod online;
mod ordered;
mod parallel;
mod plane;
mod report;
mod shard;
mod stream_oracle;
mod sync_ops;

pub use access_history::AccessHistories;
pub use checkpoint::{apply_delta, encode_delta, CheckpointError, CheckpointState};
pub use counters::Counters;
pub use detector::{Detector, HoistedDecider};
pub use djit::{DjitDetector, VectorSyncEngine};
pub use fasttrack::{EpochAccessEngine, FastTrackDetector};
pub use freshness::{FreshnessDetector, FreshnessSyncEngine};
pub use hb_oracle::HbOracle;
pub use naive_sampling::NaiveSamplingDetector;
pub use online::{EmptyAccessEngine, EmptyDetector, EmptySyncEngine, OnlineDetector};
pub use ordered::{OrderedListDetector, OrderedSyncEngine};
#[doc(hidden)]
pub use parallel::analyze_segments_waves;
pub use parallel::{
    analyze_segments, analyze_segments_cached, CachedAnalysis, SegmentedAnalysis,
    CACHE_STATE_VERSION,
};
pub use plane::{
    AccessEngine, AccessOutcome, ClockView, EpochView, HistoryAccessEngine, PublishedView,
    SplitDetector, SyncEngine, ViewSource,
};
pub use report::{AccessKind, RaceReport};
pub use shard::{ShardedOnlineDetector, SyncMode};
pub use stream_oracle::{OracleConfig, OracleOutcome, OracleStats, StreamingOracle};
pub use sync_ops::{SyncClock, SyncOps};
