//! A bounded-memory streaming ground-truth oracle.
//!
//! [`HbOracle`](crate::HbOracle) materializes the whole trace and pays
//! `O(N²)` bits for its ancestor bitsets, so the conformance story used
//! to stop exactly where the streaming pipeline begins. The
//! [`StreamingOracle`] closes that gap: it consumes any
//! [`EventSource`], keeps exact per-thread / per-lock vector-clock
//! frontiers, and holds a **sliding window** of the most recent sampled
//! accesses per variable (full clock snapshots included). An access
//! evicted from the window is not dropped — its timestamp is folded
//! into a per-`(variable, thread, kind)` **clock checkpoint**, so race
//! *existence* remains exactly decidable after eviction.
//!
//! # Guarantees (tested in `crates/core/tests/stream_oracle.rs`)
//!
//! * **Racy events are exact, for every window size** — even `0`.
//!   [`OracleOutcome::racy_events`] equals
//!   [`HbOracle::racy_events`](crate::HbOracle::racy_events) on any
//!   trace both can run on. This is stronger than the sound-subset
//!   minimum a windowed checker must provide, and it follows from two
//!   classical facts: (1) for an event `a` by thread `u`, `a ≤HB b` iff
//!   `C_a(u) ≤ C_b(u)` (the epoch lemma — `u`'s component only
//!   advances at `u`'s releases, so the scalar comparison decides the
//!   full vector order); and (2) accesses of one `(thread, kind)` pair
//!   to one variable are totally ordered by program order, so if the
//!   *latest* one is ordered before the current access, every older one
//!   is too. The checkpoint keeps exactly that latest expired epoch per
//!   `(variable, thread, kind)`, and FIFO eviction guarantees the
//!   checkpoint's maximum is the latest expired access.
//! * **Racy pairs are windowed**: [`OracleOutcome::window_pairs`]
//!   contains exactly the racy pairs whose earlier access was still in
//!   the window — always a subset of
//!   [`HbOracle::racy_pairs`](crate::HbOracle::racy_pairs), and equal
//!   to it (same order) whenever the window covers the trace.
//! * **Reservoir pairs are sound**: in reservoir mode a uniform sample
//!   of `K` accesses is retained with full clock snapshots and every
//!   new sampled access is checked against all of them — exact checks
//!   over a probabilistic pair population, giving full-trace pair
//!   coverage in expectation on corpus-scale inputs where no window
//!   fits. Reservoir selection is a deterministic function of the
//!   configured seed.
//!
//! Memory is `O(T² + L·T + V·(W·T + T) + K·T)` for `T` threads, `L`
//! locks, `V` variables, window `W` and reservoir `K` — independent of
//! the trace length `N`, which is what lets the differential suites run
//! over corpus-scale `.ftb` traces.
//!
//! The oracle is deliberately *independent* of the production engines:
//! it uses plain [`VectorClock`]s (no copy-on-write sharing, no epochs,
//! no freshness or ordered-list machinery) and decides order by full
//! component-wise comparison ([`VectorClock::leq`]) rather than the
//! engines' scalar epoch tests, so a bug in the optimized timestamp
//! representations cannot hide in the ground truth.
//!
//! # Example
//!
//! ```
//! use freshtrack_core::{OracleConfig, StreamingOracle};
//! use freshtrack_sampling::AlwaysSampler;
//! use freshtrack_trace::TraceBuilder;
//!
//! let mut b = TraceBuilder::new();
//! let x = b.var("x");
//! b.write(0, x);
//! b.write(1, x); // unsynchronized conflicting write
//! let trace = b.build();
//!
//! let oracle = StreamingOracle::new(AlwaysSampler::new(), OracleConfig::default());
//! let outcome = oracle.run_source(&mut trace.source()).unwrap();
//! assert_eq!(outcome.racy_events.len(), 1);
//! assert_eq!(outcome.window_pairs.len(), 1);
//! ```

use std::collections::VecDeque;

use freshtrack_clock::{ThreadId, VectorClock};
use freshtrack_sampling::Sampler;
use freshtrack_trace::{Event, EventId, EventKind, EventSource, LockId, SourceError, VarId};

/// Configuration for a [`StreamingOracle`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OracleConfig {
    /// Maximum number of recent sampled accesses retained per variable
    /// with full clock snapshots. Accesses beyond the window are
    /// summarized into the per-variable clock checkpoint (racy *events*
    /// stay exact; racy *pairs* are only reported while the earlier
    /// access is still windowed). The default is `usize::MAX` — full
    /// pair coverage, memory proportional to the sampled access count.
    pub window: usize,
    /// Reservoir capacity `K`: keep a uniform sample of `K` sampled
    /// accesses (across all variables) and check every new sampled
    /// access against all of them. `0` (the default) disables the
    /// reservoir.
    pub reservoir: usize,
    /// Seed for the deterministic reservoir-replacement RNG.
    pub seed: u64,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            window: usize::MAX,
            reservoir: 0,
            seed: 0,
        }
    }
}

/// Counters describing one oracle run, reported in
/// [`OracleOutcome::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OracleStats {
    /// Total events consumed.
    pub events: u64,
    /// Access events admitted to the sample set by the sampler.
    pub sampled_accesses: u64,
    /// Synchronization events processed.
    pub sync_events: u64,
    /// Accesses evicted from a window into a clock checkpoint.
    pub evictions: u64,
    /// Exact pair checks performed against windowed accesses.
    pub window_checks: u64,
    /// Exact pair checks performed against reservoir entries.
    pub reservoir_checks: u64,
    /// Racy events whose every racing partner had already been
    /// summarized — detected by the clock checkpoint alone, so no pair
    /// could be reported. Always `0` when the window covers the trace.
    pub summarized_races: u64,
    /// Largest number of entries any one variable's window held.
    pub peak_window_len: usize,
    /// Approximate bytes of live oracle state at the end of the run
    /// (clock frontiers + windows + checkpoints + reservoir).
    pub state_bytes: usize,
}

/// The result of draining a stream through a [`StreamingOracle`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OracleOutcome {
    /// Every sampled access that races with *some* earlier sampled
    /// access — exact (equal to [`HbOracle::racy_events`]) for every
    /// window size, in ascending [`EventId`] order, with the event
    /// itself attached so reports can be rendered without the trace.
    ///
    /// [`HbOracle::racy_events`]: crate::HbOracle::racy_events
    pub racy_events: Vec<(EventId, Event)>,
    /// Racy pairs `(earlier, later)` whose earlier access was still in
    /// the window: a subset of [`HbOracle::racy_pairs`], equal to it
    /// (same order) when the window covers the trace.
    ///
    /// [`HbOracle::racy_pairs`]: crate::HbOracle::racy_pairs
    pub window_pairs: Vec<(EventId, EventId)>,
    /// Racy pairs found against reservoir entries (exact checks over a
    /// uniform sample of earlier accesses). May overlap
    /// [`OracleOutcome::window_pairs`] when a reservoir entry is still
    /// windowed; [`OracleOutcome::pairs`] merges and deduplicates.
    pub reservoir_pairs: Vec<(EventId, EventId)>,
    /// Run statistics.
    pub stats: OracleStats,
}

impl OracleOutcome {
    /// All distinct racy pairs found (window ∪ reservoir), sorted by
    /// `(later, earlier)` — [`HbOracle::racy_pairs`]'s order.
    ///
    /// [`HbOracle::racy_pairs`]: crate::HbOracle::racy_pairs
    pub fn pairs(&self) -> Vec<(EventId, EventId)> {
        let mut all: Vec<(EventId, EventId)> = self
            .window_pairs
            .iter()
            .chain(self.reservoir_pairs.iter())
            .copied()
            .collect();
        all.sort_by_key(|&(a, b)| (b, a));
        all.dedup();
        all
    }

    /// The racy event ids alone, for comparison against
    /// [`HbOracle::racy_events`](crate::HbOracle::racy_events).
    pub fn racy_ids(&self) -> Vec<EventId> {
        self.racy_events.iter().map(|&(id, _)| id).collect()
    }
}

/// One retained access: identity plus the full clock snapshot of its
/// thread at access time.
#[derive(Clone, Debug)]
struct Retained {
    id: EventId,
    tid: ThreadId,
    var: VarId,
    write: bool,
    clock: VectorClock,
}

impl Retained {
    /// `self ≤HB current`, by full component-wise comparison of the
    /// retained snapshot against the current thread's frontier.
    fn ordered_before(&self, current: &VectorClock) -> bool {
        self.clock.leq(current)
    }

    fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Retained>() + self.clock.len() * 8
    }
}

/// Per-variable window + clock checkpoint.
#[derive(Clone, Debug, Default)]
struct VarState {
    /// FIFO of the most recent sampled accesses (both kinds, all
    /// threads), capacity [`OracleConfig::window`].
    recent: VecDeque<Retained>,
    /// Clock checkpoint over evicted accesses: `expired_writes(u)` is
    /// the largest `u`-component epoch of any evicted sampled write by
    /// `u` — i.e. the epoch of the *latest* evicted write by `u`, since
    /// eviction is FIFO and epochs are monotone per thread.
    expired_writes: VectorClock,
    /// Same checkpoint for evicted reads.
    expired_reads: VectorClock,
}

/// A bounded-memory ground-truth race checker over any [`EventSource`].
///
/// See the module docs above for the exactness and soundness
/// guarantees, and [`OracleConfig`] for the window / reservoir knobs.
/// The sampler decides the sample set exactly as it does for the
/// detectors, so outcomes are directly comparable with both
/// [`HbOracle`](crate::HbOracle) masks and engine reports.
#[derive(Clone, Debug)]
pub struct StreamingOracle<S> {
    sampler: S,
    config: OracleConfig,
    threads: Vec<VectorClock>,
    locks: Vec<VectorClock>,
    vars: Vec<VarState>,
    reservoir: Vec<Retained>,
    /// Sampled accesses seen so far — the reservoir's population size.
    reservoir_seen: u64,
    rng: u64,
    next_id: u64,
    racy_events: Vec<(EventId, Event)>,
    window_pairs: Vec<(EventId, EventId)>,
    reservoir_pairs: Vec<(EventId, EventId)>,
    stats: OracleStats,
}

impl<S: Sampler> StreamingOracle<S> {
    /// Creates an oracle with the given sampler and configuration.
    pub fn new(sampler: S, config: OracleConfig) -> Self {
        StreamingOracle {
            sampler,
            config,
            threads: Vec::new(),
            locks: Vec::new(),
            vars: Vec::new(),
            reservoir: Vec::new(),
            reservoir_seen: 0,
            rng: splitmix64(config.seed ^ 0x9e37_79b9_7f4a_7c15),
            next_id: 0,
            racy_events: Vec::new(),
            window_pairs: Vec::new(),
            reservoir_pairs: Vec::new(),
            stats: OracleStats::default(),
        }
    }

    /// Consumes one event. `id` must be the event's stream position,
    /// strictly increasing across calls — the same numbering the
    /// detectors and [`HbOracle`](crate::HbOracle) use.
    pub fn on_event(&mut self, id: EventId, event: Event) {
        self.stats.events += 1;
        self.ensure_thread(event.tid);
        match event.kind {
            EventKind::Acquire(l) => self.acquire(event.tid, l),
            EventKind::Release(l) => self.release(event.tid, l),
            EventKind::Read(v) | EventKind::Write(v) => {
                if self.sampler.sample(id, event) {
                    self.stats.sampled_accesses += 1;
                    let write = matches!(event.kind, EventKind::Write(_));
                    self.access(id, event, v, write);
                }
            }
        }
    }

    /// Drains `source`, numbering events by stream position (continuing
    /// from any events already fed), and returns the outcome.
    ///
    /// # Errors
    ///
    /// Propagates the first error the source reports; partial findings
    /// are dropped with it, as for
    /// [`Detector::run_source`](crate::Detector::run_source).
    pub fn run_source(
        mut self,
        source: &mut dyn EventSource,
    ) -> Result<OracleOutcome, SourceError> {
        self.feed_source(source)?;
        Ok(self.finish())
    }

    /// Feeds every remaining event of `source`, numbering by stream
    /// position, without finishing — the resumable half of
    /// [`run_source`](StreamingOracle::run_source).
    ///
    /// # Errors
    ///
    /// Propagates the first error the source reports.
    pub fn feed_source(&mut self, source: &mut dyn EventSource) -> Result<(), SourceError> {
        while let Some(event) = source.next_event()? {
            let id = EventId::new(self.next_id);
            self.next_id += 1;
            self.on_event(id, event);
        }
        Ok(())
    }

    /// Finalizes the run: computes the end-of-run state footprint and
    /// returns everything found.
    pub fn finish(mut self) -> OracleOutcome {
        self.stats.state_bytes = self.approx_state_bytes();
        OracleOutcome {
            racy_events: self.racy_events,
            window_pairs: self.window_pairs,
            reservoir_pairs: self.reservoir_pairs,
            stats: self.stats,
        }
    }

    fn ensure_thread(&mut self, tid: ThreadId) {
        while self.threads.len() <= tid.index() {
            let next = ThreadId::new(self.threads.len() as u32);
            // C_t ← ⊥[t ↦ 1], matching the sync engines so retained
            // epochs line up with the frontier components.
            self.threads.push(VectorClock::bottom_with(next, 1));
        }
    }

    fn ensure_lock(&mut self, lock: LockId) {
        if self.locks.len() <= lock.index() {
            self.locks.resize_with(lock.index() + 1, VectorClock::new);
        }
    }

    fn acquire(&mut self, tid: ThreadId, lock: LockId) {
        self.stats.sync_events += 1;
        self.ensure_lock(lock);
        let lock_clock = &self.locks[lock.index()];
        if !lock_clock.is_empty() {
            self.threads[tid.index()].join(lock_clock);
        }
    }

    fn release(&mut self, tid: ThreadId, lock: LockId) {
        self.stats.sync_events += 1;
        self.ensure_lock(lock);
        // Cℓ ← C_t, then bump the local component so later events of
        // `tid` are distinguishable from the released frontier.
        let clock = &mut self.threads[tid.index()];
        self.locks[lock.index()].assign_from(clock);
        clock.increment(tid);
    }

    fn access(&mut self, id: EventId, event: Event, var: VarId, write: bool) {
        if self.vars.len() <= var.index() {
            self.vars.resize_with(var.index() + 1, VarState::default);
        }
        let tid = event.tid;
        let current = &self.threads[tid.index()];
        let state = &mut self.vars[var.index()];

        // 1. Exact pair checks against the window.
        let mut racy = false;
        for earlier in &state.recent {
            if earlier.tid == tid || !(earlier.write || write) {
                continue;
            }
            self.stats.window_checks += 1;
            if !earlier.ordered_before(current) {
                racy = true;
                self.window_pairs.push((earlier.id, id));
            }
        }

        // 2. Clock-checkpoint test over evicted accesses: a race with
        // some evicted access by `u` exists iff the checkpoint's
        // `u`-component exceeds the current frontier's (the epoch
        // lemma). Writes always conflict; reads only against a write.
        let mut summarized = checkpoint_races(&state.expired_writes, current, tid);
        if write {
            summarized |= checkpoint_races(&state.expired_reads, current, tid);
        }
        if summarized && !racy {
            self.stats.summarized_races += 1;
        }
        racy |= summarized;

        // 3. Exact checks against the cross-variable reservoir: entries
        // carry their variable, so conflict needs matching variables,
        // differing threads, and at least one write. A hit is an exact
        // race over a uniformly sampled pair population; it is reported
        // as a pair but does NOT mark the event racy — `racy_events`
        // stays exactly `HbOracle::racy_events` regardless of K.
        let current_clock = current.clone();
        if self.config.reservoir > 0 {
            for earlier in &self.reservoir {
                if earlier.var != var || earlier.tid == tid || !(earlier.write || write) {
                    continue;
                }
                self.stats.reservoir_checks += 1;
                if !earlier.ordered_before(&current_clock) {
                    self.reservoir_pairs.push((earlier.id, id));
                }
            }
        }

        // 4. Record the racy event (at most once per event, like the
        // detectors), then retain the access.
        if racy {
            self.racy_events.push((id, event));
        }
        let state = &mut self.vars[var.index()];
        let retained = Retained {
            id,
            tid,
            var,
            write,
            clock: current_clock,
        };
        state.recent.push_back(retained.clone());
        while state.recent.len() > self.config.window {
            let evicted = state.recent.pop_front().expect("len > window ≥ 0");
            self.stats.evictions += 1;
            let target = if evicted.write {
                &mut state.expired_writes
            } else {
                &mut state.expired_reads
            };
            let epoch = evicted.clock.get(evicted.tid);
            if epoch > target.get(evicted.tid) {
                target.set(evicted.tid, epoch);
            }
        }
        self.stats.peak_window_len = self.stats.peak_window_len.max(state.recent.len());

        // 5. Reservoir maintenance (algorithm R, deterministic RNG).
        if self.config.reservoir > 0 {
            self.reservoir_seen += 1;
            if self.reservoir.len() < self.config.reservoir {
                self.reservoir.push(retained);
            } else {
                self.rng = splitmix64(self.rng);
                let j = (self.rng % self.reservoir_seen) as usize;
                if j < self.reservoir.len() {
                    self.reservoir[j] = retained;
                }
            }
        }
    }

    fn approx_state_bytes(&self) -> usize {
        let clock_bytes = |c: &VectorClock| std::mem::size_of::<VectorClock>() + c.len() * 8;
        let mut bytes = 0;
        for c in self.threads.iter().chain(self.locks.iter()) {
            bytes += clock_bytes(c);
        }
        for v in &self.vars {
            bytes += clock_bytes(&v.expired_writes) + clock_bytes(&v.expired_reads);
            bytes += v.recent.iter().map(Retained::approx_bytes).sum::<usize>();
        }
        bytes += self
            .reservoir
            .iter()
            .map(Retained::approx_bytes)
            .sum::<usize>();
        bytes
    }
}

/// Does the current access race with any summarized (evicted) access
/// recorded in `checkpoint`? True iff some component of the checkpoint
/// (other than the acting thread's) exceeds the current frontier.
fn checkpoint_races(checkpoint: &VectorClock, current: &VectorClock, tid: ThreadId) -> bool {
    checkpoint
        .iter()
        .any(|(u, epoch)| u != tid && epoch > 0 && epoch > current.get(u))
}

/// SplitMix64 — the deterministic reservoir RNG (no external deps; the
/// core crate stays dependency-free below `sampling`).
fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}
