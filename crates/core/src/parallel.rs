//! Pipelined, checkpointed, and incremental analysis of segmented
//! `.ftb` v2 trace files.
//!
//! [`analyze_segments`] replays a [`SegmentedTraceFile`] with one
//! sequential *coordinator* and `jobs` *worker* replicas, producing
//! reports and counters **byte-identical** to a sequential
//! [`Detector::run_source`](crate::Detector::run_source) pass over the
//! same stream (the differential suite in `tests/parallel.rs` pins
//! this). The design follows the two-plane seam of [`crate::plane`]:
//!
//! * A **reader** thread streams segment bytes off the file ahead of
//!   everyone else and decodes them ([`decode_segment_indexed`] is
//!   pure), so I/O and record decoding overlap the analysis behind a
//!   small bounded channel.
//! * The **coordinator** walks decoded segments in order, driving the
//!   one authoritative sync engine (`D::Sync`) over every
//!   acquire/release — exactly the operation sequence the monolithic
//!   detector performs, so the sync-side counters match to the last
//!   `deep_copy`. At each segment boundary it exports the engine via
//!   [`CheckpointState::export_state`]; the export seeds the segment's
//!   worker replicas — the first replayed segment as the full byte
//!   image, every later one as an
//!   [`encode_delta`](crate::checkpoint::encode_delta) diff against the
//!   previous boundary (consecutive exports share most of their bytes,
//!   so the chain is far smaller than per-segment full checkpoints). It
//!   also runs the cross-segment duplicate-name check and the locking
//!   discipline check the sequential path gets from
//!   [`Validated`](freshtrack_trace::Validated).
//! * Each **worker** owns the variables with `var.index() % jobs ==
//!   worker_index` plus one access-plane shard
//!   ([`SplitDetector::split_access`]), and runs behind the coordinator
//!   on its own bounded queue — segment `k+1` is being read and walked
//!   while segment `k` replays. Per segment it advances the seed chain,
//!   and, if the segment touches any owned variable, builds a fresh
//!   sync replica from the seed and replays *all* of the segment's
//!   events — sync events mutate the replica (work counted into
//!   discarded scratch counters), owned accesses are analyzed against
//!   the replica's published view, unowned accesses only feed the
//!   sampler so the per-thread `RelAfter_S` bits stay exact. Imports
//!   sever all clock sharing, but sharing never changes clock *values*,
//!   so verdicts are unaffected; replica-side sharing counters are
//!   scratch precisely because they are the one thing import skews.
//!
//! With `jobs == 1` the split is pointless overhead, so the pipeline
//! short-circuits to a **single-pass** coordinator that drives the sync
//! *and* access halves of one engine pair directly — no per-segment
//! export/import round-trip, no double replay — while the reader thread
//! still decodes ahead. Published views are taken per sampled access
//! and dropped before the owner's next sync mutation, so lazy-copy
//! counters stay identical to the monolith's (take-before-mutate,
//! invariant 7).
//!
//! Every event is sampler-evaluated once per party that needs its bit,
//! which is sound because sampling is a pure function of `(seed,
//! EventId)` — invariant 4 in `ARCHITECTURE.md`. Final counters are
//! `coordinator + Σ workers`: the coordinator contributes `events` and
//! all sync-plane work, workers contribute all access-plane work, and
//! the two partitions are exactly the monolith's split of the same
//! fields.
//!
//! # Incremental analysis
//!
//! [`analyze_segments_cached`] makes re-analysis of a growing trace
//! *O(appended)*: alongside the analysis it fills an
//! [`AnalysisCache`] sidecar (the `.ftc` format of
//! `freshtrack-trace`) recording, per segment, the segment's byte
//! identity and the complete analysis state at its end boundary —
//! coordinator sync checkpoint and per-worker access checkpoints
//! (delta-encoded along the segment chain), name/thread/pending/
//! discipline tables, cumulative counters, and the segment's reports.
//! On the next run the sidecar's entry prefix is validated against the
//! file (fingerprint equality, footer identity, and a CRC-32 re-hash of
//! every reused segment's bytes — corruption demotes the cache, it is
//! never silently trusted); analysis state is rebuilt from the last
//! valid entry and only the segments past the prefix are replayed.
//! Because the seeded state is checkpoint-exact — including the
//! sharing-topology alias marks of
//! [`OrderedSyncEngine`](crate::OrderedSyncEngine) — the resumed run's
//! reports *and counters* are byte-identical to a cold run over the
//! full file (invariant 11; `tests/cache.rs` pins it across engines ×
//! samplers × append points).

use std::io::{Read, Seek};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;

use freshtrack_clock::wire::{self, WireError, WireReader};
use freshtrack_sampling::Sampler;
use freshtrack_trace::{
    decode_segment, decode_segment_indexed, AnalysisCache, BinaryTraceError, CacheConfig,
    CacheEntry, DisciplineChecker, EventId, EventKind, SegmentData, SegmentMeta,
    SegmentedTraceFile, SourceError, ThreadId, VarId,
};

use crate::checkpoint::{self, apply_delta, encode_delta, CheckpointError, CheckpointState};
use crate::plane::{AccessEngine, SplitDetector, SyncEngine};
use crate::{AccessKind, Counters, RaceReport};

/// Version of the opaque checkpoint/counter/report payloads this crate
/// writes into `.ftc` sidecar entries
/// ([`CacheConfig::state_version`]). Bump whenever any
/// [`CheckpointState`] wire format, the counter field list, or the
/// report encoding changes shape — older sidecars then fail the
/// fingerprint check and are rebuilt instead of misdecoded.
pub const CACHE_STATE_VERSION: u32 = 1;

/// Decoded segments the reader keeps in flight ahead of the
/// coordinator.
const READ_AHEAD: usize = 4;

/// Dispatched segments each worker may queue behind the coordinator.
const WORKER_QUEUE: usize = 4;

/// The merged result of a parallel segmented analysis.
#[derive(Clone, Debug)]
pub struct SegmentedAnalysis {
    /// All race reports, strictly sorted by racing
    /// [`EventId`](freshtrack_trace::EventId) — the same order the
    /// sequential pass produces.
    pub reports: Vec<RaceReport>,
    /// Coordinator plus worker counters, field-identical to a
    /// sequential run's.
    pub counters: Counters,
    /// Threads in the trace (declared or observed, whichever is
    /// larger).
    pub threads: u32,
    /// The merged lock name table.
    pub lock_names: Vec<String>,
    /// The merged variable name table.
    pub var_names: Vec<String>,
}

/// The result of an incremental ([`analyze_segments_cached`]) run: the
/// analysis, the rewritten sidecar, and how much of the previous
/// sidecar was reusable.
#[derive(Clone, Debug)]
pub struct CachedAnalysis {
    /// The analysis — byte-identical to what a cold
    /// [`analyze_segments`] run over the full file produces.
    pub analysis: SegmentedAnalysis,
    /// The rewritten sidecar covering every segment of the file;
    /// persist it next to the trace for the next run.
    pub cache: AnalysisCache,
    /// Segments whose cached state was reused (the validated prefix).
    pub reused_segments: usize,
    /// Segments in the file.
    pub total_segments: usize,
}

/// A segment's seed: the authoritative engine state and pending
/// `RelAfter_S` bits as of the segment's first event.
struct Seed {
    sync: SeedSync,
    pending: Vec<bool>,
}

/// The sync half of a seed. Consecutive boundary exports differ only
/// where clocks moved during one segment, so only the first dispatched
/// segment ships the full checkpoint; the rest carry
/// [`encode_delta`](crate::checkpoint::encode_delta) diffs against the
/// previous segment's export, and every worker replays the chain in
/// order (cheap byte splicing) while importing only the segments it
/// owns.
enum SeedSync {
    /// A full [`CheckpointState::export_state`] image.
    Full(Vec<u8>),
    /// A delta against the previous segment's export.
    Delta(Vec<u8>),
}

/// One segment's work order, shared by all workers.
struct Dispatch {
    first_event_id: u64,
    data: Arc<SegmentData>,
    seed: Arc<Seed>,
}

struct Worker<D: SplitDetector, S> {
    detector: D,
    access: D::Access,
    sampler: S,
    access_counters: Counters,
    reports: Vec<RaceReport>,
}

/// Everything a resumed run starts from; [`Resume::cold`] is the empty
/// initial state a full replay uses.
struct Resume {
    /// First segment to replay.
    start: usize,
    lock_names: Vec<String>,
    var_names: Vec<String>,
    threads: u32,
    pending: Vec<bool>,
    checker: DisciplineChecker,
    /// Merged cumulative counters at the boundary.
    counters: Counters,
    /// Coordinator sync checkpoint (empty = fresh engine).
    sync_state: Vec<u8>,
    /// Per-worker access checkpoints (empty = fresh shard).
    access_states: Vec<Vec<u8>>,
    /// Reports for segments `0..start`.
    reports: Vec<RaceReport>,
}

impl Resume {
    fn cold(jobs: usize) -> Self {
        Resume {
            start: 0,
            lock_names: Vec::new(),
            var_names: Vec::new(),
            threads: 0,
            pending: Vec::new(),
            checker: DisciplineChecker::new(),
            counters: Counters::new(),
            sync_state: Vec::new(),
            access_states: vec![Vec::new(); jobs],
            reports: Vec::new(),
        }
    }

    /// Rebuilds the boundary state after `prefix` validated sidecar
    /// entries: names and reports by concatenation, checkpoint bytes by
    /// folding the delta chains, the rest from the last entry.
    ///
    /// Any decode failure means the sidecar lies about its own contents
    /// (possible only across a format drift the fingerprint missed) —
    /// the caller falls back to a cold run.
    fn from_cache(
        prior: &AnalysisCache,
        prefix: usize,
        jobs: usize,
    ) -> Result<Self, CheckpointError> {
        let mut sync_state: Vec<u8> = Vec::new();
        let mut access_states: Vec<Vec<u8>> = vec![Vec::new(); jobs];
        let mut lock_names = Vec::new();
        let mut var_names = Vec::new();
        let mut reports = Vec::new();
        for entry in &prior.entries[..prefix] {
            sync_state = apply_delta(&sync_state, &entry.sync_delta)?;
            if entry.access_deltas.len() != jobs {
                return Err(WireError::Invalid("cache entry has the wrong worker count").into());
            }
            for (state, delta) in access_states.iter_mut().zip(&entry.access_deltas) {
                *state = apply_delta(state, delta)?;
            }
            lock_names.extend(entry.new_locks.iter().cloned());
            var_names.extend(entry.new_vars.iter().cloned());
            reports.extend(decode_reports(&entry.reports)?);
        }
        let last = &prior.entries[prefix - 1];
        let checker = DisciplineChecker::import_wire(&last.discipline)?;
        let mut r = WireReader::new(&last.counters);
        let counters = checkpoint::get_counters(&mut r)?;
        r.finish()?;
        Ok(Resume {
            start: prefix,
            lock_names,
            var_names,
            threads: last.threads,
            pending: last.pending.clone(),
            checker,
            counters,
            sync_state,
            access_states,
            reports,
        })
    }
}

/// Per-segment record the coordinator keeps when building a sidecar.
struct CoordRecord {
    meta: SegmentMeta,
    new_locks: Vec<String>,
    new_vars: Vec<String>,
    threads: u32,
    pending: Vec<bool>,
    discipline: Vec<u8>,
    /// Coordinator-side cumulative counters at the boundary.
    counters: Counters,
    /// Sync checkpoint delta along the segment chain.
    sync_delta: Vec<u8>,
}

/// Per-segment record each worker keeps when building a sidecar.
struct WorkerRecord {
    /// Worker-side cumulative counters at the boundary.
    counters: Counters,
    /// Access checkpoint delta along this worker's segment chain.
    access_delta: Vec<u8>,
    /// The segment's reports from this worker's owned variables.
    reports: Vec<RaceReport>,
}

struct PipelineOutput {
    analysis: SegmentedAnalysis,
    coord: Vec<CoordRecord>,
    workers: Vec<Vec<WorkerRecord>>,
}

/// Why a pipeline run stopped: a real analysis error (what a sequential
/// pass would report), or resume state that failed to import (cache
/// fallback, never surfaced to callers as an analysis failure).
enum RunError {
    Source(SourceError),
    // The payload documents *what* failed to import; callers only
    // branch on the variant (fall back to a cold run).
    Resume(#[allow(dead_code)] CheckpointError),
}

impl From<SourceError> for RunError {
    fn from(e: SourceError) -> Self {
        RunError::Source(e)
    }
}

/// Replays a segmented trace file on the pipelined scheduler; see the
/// module docs for the architecture and the equivalence argument.
///
/// `detector` must be in its initial state (it supplies configuration —
/// engine options and sampler seed — via [`SplitDetector`], never
/// accumulated state), and `sampler` must make the same decisions as
/// the detector's own sampler (same seed); the CLI constructs both from
/// one `--seed`. `jobs` is clamped to at least 1; `jobs == 1` takes the
/// single-pass short circuit without losing the byte-identity
/// guarantee.
///
/// # Errors
///
/// Any [`SourceError`] a sequential pass over the same file would hit:
/// corrupt segment bytes or checksums ([`SourceError::Binary`], naming
/// the failing segment's index and start offset), cross-segment
/// duplicate name definitions (`Binary`, anchored at the offending
/// segment's offset), or locking-discipline violations
/// ([`SourceError::Discipline`]). Reports gathered before the error are
/// dropped with it, exactly like
/// [`Detector::run_source`](crate::Detector::run_source).
///
/// # Panics
///
/// Panics if a worker thread panics (a bug in an engine, never an input
/// property), or if a coordinator-exported seed fails to import (the
/// export/import pair is exercised by the checkpoint suite).
pub fn analyze_segments<D, S, R>(
    file: &mut SegmentedTraceFile<R>,
    detector: &D,
    sampler: &S,
    jobs: usize,
) -> Result<SegmentedAnalysis, SourceError>
where
    D: SplitDetector,
    D::Sync: CheckpointState,
    D::Access: CheckpointState,
    S: Sampler + Clone + Send,
    R: Read + Seek + Send,
{
    let jobs = jobs.max(1);
    match run_pipeline(file, detector, sampler, jobs, Resume::cold(jobs), false) {
        Ok(out) => Ok(out.analysis),
        Err(RunError::Source(e)) => Err(e),
        Err(RunError::Resume(_)) => unreachable!("cold runs import no state"),
    }
}

/// Incremental [`analyze_segments`]: validates `prior` (a decoded
/// `.ftc` sidecar) against the file and `config`, replays only the
/// segments past the longest valid prefix, and returns the analysis
/// together with a rewritten sidecar covering the whole file.
///
/// The prefix-validation rule: the cache is reusable only under an
/// *exactly equal* [`CacheConfig`] (engine, sampler identity and seed,
/// segment options, payload format version, worker count — build it
/// with `state_version:` [`CACHE_STATE_VERSION`] and `jobs` equal to
/// the `jobs` argument), and an entry extends the prefix only if it
/// matches the footer's identity for its segment *and* the segment's
/// bytes still hash to the recorded CRC-32. The first mismatch ends the
/// prefix; everything after it is replayed and rewritten. A cache is
/// advisory — malformed resume payloads demote to a cold run, never to
/// an error — and the analysis output is byte-identical to a cold
/// [`analyze_segments`] run either way (invariant 11).
///
/// # Errors
///
/// Exactly the [`SourceError`]s [`analyze_segments`] can return; cache
/// problems are handled by falling back, not reported.
pub fn analyze_segments_cached<D, S, R>(
    file: &mut SegmentedTraceFile<R>,
    detector: &D,
    sampler: &S,
    jobs: usize,
    config: &CacheConfig,
    prior: Option<&AnalysisCache>,
) -> Result<CachedAnalysis, SourceError>
where
    D: SplitDetector,
    D::Sync: CheckpointState,
    D::Access: CheckpointState,
    S: Sampler + Clone + Send,
    R: Read + Seek + Send,
{
    let jobs = jobs.max(1);
    let total = file.segment_count();
    let mut prefix = validated_prefix(file, config, prior, jobs)?;
    let resume = match prior {
        Some(prior) if prefix > 0 => match Resume::from_cache(prior, prefix, jobs) {
            Ok(resume) => resume,
            Err(_) => {
                prefix = 0;
                Resume::cold(jobs)
            }
        },
        _ => Resume::cold(jobs),
    };

    let out = match run_pipeline(file, detector, sampler, jobs, resume, true) {
        Ok(out) => out,
        Err(RunError::Resume(_)) => {
            // The folded checkpoints would not import — discard the
            // cache and run cold.
            prefix = 0;
            match run_pipeline(file, detector, sampler, jobs, Resume::cold(jobs), true) {
                Ok(out) => out,
                Err(RunError::Source(e)) => return Err(e),
                Err(RunError::Resume(_)) => unreachable!("cold runs import no state"),
            }
        }
        Err(RunError::Source(e)) => return Err(e),
    };

    let mut entries: Vec<CacheEntry> = match prior {
        Some(prior) if prefix > 0 => prior.entries[..prefix].to_vec(),
        _ => Vec::new(),
    };
    for (i, cr) in out.coord.iter().enumerate() {
        let mut cumulative = cr.counters;
        let mut seg_reports: Vec<RaceReport> = Vec::new();
        let mut access_deltas = Vec::with_capacity(out.workers.len());
        for records in &out.workers {
            cumulative += records[i].counters;
            seg_reports.extend(records[i].reports.iter().copied());
            access_deltas.push(records[i].access_delta.clone());
        }
        seg_reports.sort_by_key(|r| r.event);
        let mut counters = Vec::new();
        checkpoint::put_counters(&mut counters, &cumulative);
        let mut reports = Vec::new();
        encode_reports(&mut reports, &seg_reports);
        entries.push(CacheEntry {
            crc32: cr.meta.crc32,
            offset: cr.meta.offset,
            byte_len: cr.meta.byte_len,
            event_count: cr.meta.event_count,
            first_event_id: cr.meta.first_event_id,
            locks_before: cr.meta.locks_before,
            vars_before: cr.meta.vars_before,
            new_locks: cr.new_locks.clone(),
            new_vars: cr.new_vars.clone(),
            threads: cr.threads,
            pending: cr.pending.clone(),
            discipline: cr.discipline.clone(),
            counters,
            sync_delta: cr.sync_delta.clone(),
            access_deltas,
            reports,
        });
    }

    Ok(CachedAnalysis {
        analysis: out.analysis,
        cache: AnalysisCache {
            config: config.clone(),
            entries,
        },
        reused_segments: prefix,
        total_segments: total,
    })
}

/// The longest sidecar prefix that is safe to reuse: fingerprint
/// equality, then per segment the footer identity *and* a CRC re-hash
/// of the segment's actual bytes.
fn validated_prefix<R: Read + Seek>(
    file: &mut SegmentedTraceFile<R>,
    config: &CacheConfig,
    prior: Option<&AnalysisCache>,
    jobs: usize,
) -> Result<usize, SourceError> {
    let Some(prior) = prior else { return Ok(0) };
    if prior.config != *config || config.jobs as usize != jobs {
        return Ok(0);
    }
    let n = prior.entries.len().min(file.segment_count());
    let mut prefix = 0;
    while prefix < n {
        let meta = file.meta(prefix).clone();
        if !prior.entries[prefix].matches(&meta) || file.segment_crc32(prefix)? != meta.crc32 {
            break;
        }
        prefix += 1;
    }
    Ok(prefix)
}

type ReadItem = Result<(SegmentMeta, Arc<SegmentData>), SourceError>;

/// The reader stage: sequential byte reads plus record decoding, kept
/// [`READ_AHEAD`] segments in front of the coordinator. Stops at the
/// first failure (the coordinator surfaces it in stream order) or when
/// the coordinator hangs up.
fn read_segments<R: Read + Seek>(
    file: &mut SegmentedTraceFile<R>,
    start: usize,
    tx: SyncSender<ReadItem>,
) {
    for k in start..file.segment_count() {
        let item = (|| {
            let meta = file.meta(k).clone();
            let bytes = file.read_segment_bytes(k)?;
            let data = decode_segment_indexed(k, &bytes, &meta)?;
            Ok((meta, Arc::new(data)))
        })();
        let stop = item.is_err();
        if tx.send(item.map_err(SourceError::Binary)).is_err() || stop {
            return;
        }
    }
}

fn run_pipeline<D, S, R>(
    file: &mut SegmentedTraceFile<R>,
    detector: &D,
    sampler: &S,
    jobs: usize,
    resume: Resume,
    record: bool,
) -> Result<PipelineOutput, RunError>
where
    D: SplitDetector,
    D::Sync: CheckpointState,
    D::Access: CheckpointState,
    S: Sampler + Clone + Send,
    R: Read + Seek + Send,
{
    if jobs == 1 {
        run_single(file, detector, sampler, resume, record)
    } else {
        run_workers(file, detector, sampler, jobs, resume, record)
    }
}

/// The `jobs == 1` short circuit: one engine pair driven directly by
/// the coordinator — the monolith's event loop with a reader thread
/// decoding ahead. No checkpoint round-trip, no second replay of sync
/// events; throughput recovers to within I/O overhead of
/// [`Detector::run_source`](crate::Detector::run_source).
fn run_single<D, S, R>(
    file: &mut SegmentedTraceFile<R>,
    detector: &D,
    sampler: &S,
    resume: Resume,
    record: bool,
) -> Result<PipelineOutput, RunError>
where
    D: SplitDetector,
    D::Sync: CheckpointState,
    D::Access: CheckpointState,
    S: Sampler + Clone + Send,
    R: Read + Seek + Send,
{
    let mut sync = detector.split_sync();
    let mut access = detector.split_access();
    if !resume.sync_state.is_empty() {
        sync.import_state(&resume.sync_state)
            .map_err(RunError::Resume)?;
    }
    let Resume {
        start,
        mut lock_names,
        mut var_names,
        mut threads,
        mut pending,
        mut checker,
        mut counters,
        sync_state,
        access_states,
        mut reports,
    } = resume;
    let mut cache_prev_access = access_states.into_iter().next().unwrap_or_default();
    if !cache_prev_access.is_empty() {
        access
            .import_state(&cache_prev_access)
            .map_err(RunError::Resume)?;
    }
    let mut cache_prev_sync = sync_state;
    let mut sampler = sampler.clone();
    let mut coord: Vec<CoordRecord> = Vec::new();
    let mut records: Vec<WorkerRecord> = Vec::new();
    let segment_count = file.segment_count();

    let outcome = std::thread::scope(|scope| -> Result<(), SourceError> {
        let (tx, rx) = sync_channel::<ReadItem>(READ_AHEAD);
        scope.spawn(move || read_segments(file, start, tx));

        for _ in start..segment_count {
            let (meta, data) = match rx.recv() {
                Ok(item) => item?,
                Err(_) => break,
            };
            check_watermarks(&lock_names, &var_names, &meta)?;
            merge_names(&mut lock_names, &data.new_locks, "lock", meta.offset)?;
            merge_names(&mut var_names, &data.new_vars, "var", meta.offset)?;
            threads = threads
                .max(data.declared_threads)
                .max(data.observed_threads);

            let seg_report_start = reports.len();
            for (i, &event) in data.events.iter().enumerate() {
                let id = EventId::new(meta.first_event_id + i as u64);
                checker.check(id, event)?;
                counters.events += 1;
                let tid = event.tid;
                // Deferred admission, mirroring the monolithic engines:
                // only sync events and *sampled* accesses widen the
                // sync plane (invariant 10).
                match event.kind {
                    EventKind::Acquire(lock) => {
                        sync.ensure_thread(tid);
                        sync.acquire(tid, lock, &mut counters);
                    }
                    EventKind::Release(lock) => {
                        sync.ensure_thread(tid);
                        if pending.len() <= tid.index() {
                            pending.resize(tid.index() + 1, false);
                        }
                        let sampled = std::mem::take(&mut pending[tid.index()]);
                        sync.release(tid, lock, sampled, &mut counters);
                    }
                    EventKind::Read(_) | EventKind::Write(_) => {
                        if sampler.sample(id, event) {
                            sync.ensure_thread(tid);
                            if pending.len() <= tid.index() {
                                pending.resize(tid.index() + 1, false);
                            }
                            pending[tid.index()] = true;
                            // Take-before-mutate: the view dies inside
                            // this arm, before `tid`'s next sync
                            // mutation, so it never forces a deep copy
                            // the monolith would not pay.
                            let view = sync.publish(tid);
                            let outcome = access.access_sampled(id, event, &view, &mut counters);
                            debug_assert!(outcome.sampled, "hoisted decision admitted this");
                            if let Some(report) = outcome.report {
                                reports.push(report);
                            }
                        } else {
                            crate::plane::tally_access(&event, &mut counters);
                        }
                    }
                }
            }

            if record {
                let mut export = Vec::new();
                sync.export_state(&mut export);
                let sync_delta = encode_delta(&cache_prev_sync, &export);
                cache_prev_sync = export;
                let mut export = Vec::new();
                access.export_state(&mut export);
                let access_delta = encode_delta(&cache_prev_access, &export);
                cache_prev_access = export;
                let mut discipline = Vec::new();
                checker.export_wire(&mut discipline);
                coord.push(CoordRecord {
                    meta,
                    new_locks: data.new_locks.clone(),
                    new_vars: data.new_vars.clone(),
                    threads,
                    pending: pending.clone(),
                    discipline,
                    counters,
                    sync_delta,
                });
                records.push(WorkerRecord {
                    // The single pass books everything into the
                    // coordinator's counters; the worker column is
                    // zero so the merged cumulative stays exact.
                    counters: Counters::new(),
                    access_delta,
                    reports: reports[seg_report_start..].to_vec(),
                });
            }
        }
        Ok(())
    });
    outcome?;

    Ok(PipelineOutput {
        analysis: SegmentedAnalysis {
            reports,
            counters,
            threads,
            lock_names,
            var_names,
        },
        coord,
        workers: vec![records],
    })
}

/// The `jobs >= 2` pipeline: reader ahead, coordinator in the middle,
/// workers behind on bounded queues.
fn run_workers<D, S, R>(
    file: &mut SegmentedTraceFile<R>,
    detector: &D,
    sampler: &S,
    jobs: usize,
    resume: Resume,
    record: bool,
) -> Result<PipelineOutput, RunError>
where
    D: SplitDetector,
    D::Sync: CheckpointState,
    D::Access: CheckpointState,
    S: Sampler + Clone + Send,
    R: Read + Seek + Send,
{
    let mut workers: Vec<Worker<D, S>> = (0..jobs)
        .map(|_| Worker {
            detector: detector.clone(),
            access: detector.split_access(),
            sampler: sampler.clone(),
            access_counters: Counters::new(),
            reports: Vec::new(),
        })
        .collect();
    for (worker, state) in workers.iter_mut().zip(&resume.access_states) {
        if !state.is_empty() {
            worker
                .access
                .import_state(state)
                .map_err(RunError::Resume)?;
        }
    }
    let mut sync = detector.split_sync();
    if !resume.sync_state.is_empty() {
        sync.import_state(&resume.sync_state)
            .map_err(RunError::Resume)?;
    }
    let Resume {
        start,
        mut lock_names,
        mut var_names,
        mut threads,
        mut pending,
        mut checker,
        mut counters,
        sync_state,
        mut access_states,
        reports: prior_reports,
    } = resume;
    let mut sampler = sampler.clone();
    let mut coord: Vec<CoordRecord> = Vec::new();
    let segment_count = file.segment_count();

    let (outcome, mut workers, worker_records) = std::thread::scope(|scope| {
        let (tx, rx) = sync_channel::<ReadItem>(READ_AHEAD);
        scope.spawn(move || read_segments(file, start, tx));

        let mut worker_txs: Vec<SyncSender<Dispatch>> = Vec::with_capacity(jobs);
        let mut handles = Vec::with_capacity(jobs);
        for (idx, mut worker) in workers.into_iter().enumerate() {
            let (wtx, wrx) = sync_channel::<Dispatch>(WORKER_QUEUE);
            worker_txs.push(wtx);
            let chain_base = std::mem::take(&mut access_states[idx]);
            handles.push(scope.spawn(move || {
                let records = worker_run(&mut worker, wrx, idx, jobs, chain_base, record);
                (worker, records)
            }));
        }

        // The coordinator: exports at every boundary feed both the seed
        // chain (state at segment *start*, for workers) and, when
        // recording, the sidecar chain (state at segment *end* — the
        // same export, one iteration later).
        let coordinate = || -> Result<(), SourceError> {
            let mut start_export = Vec::new();
            sync.export_state(&mut start_export);
            let mut prev_seed_export: Vec<u8> = Vec::new();
            let mut cache_prev = sync_state;
            let mut first = true;
            for _ in start..segment_count {
                let (meta, data) = match rx.recv() {
                    Ok(item) => item?,
                    Err(_) => break,
                };
                check_watermarks(&lock_names, &var_names, &meta)?;
                merge_names(&mut lock_names, &data.new_locks, "lock", meta.offset)?;
                merge_names(&mut var_names, &data.new_vars, "var", meta.offset)?;
                threads = threads
                    .max(data.declared_threads)
                    .max(data.observed_threads);

                let seed = Arc::new(Seed {
                    sync: if first {
                        SeedSync::Full(start_export.clone())
                    } else {
                        SeedSync::Delta(encode_delta(&prev_seed_export, &start_export))
                    },
                    pending: pending.clone(),
                });
                first = false;
                prev_seed_export = std::mem::take(&mut start_export);
                for wtx in &worker_txs {
                    wtx.send(Dispatch {
                        first_event_id: meta.first_event_id,
                        data: Arc::clone(&data),
                        seed: Arc::clone(&seed),
                    })
                    .expect("worker thread exited before its queue closed");
                }

                for (i, &event) in data.events.iter().enumerate() {
                    let id = EventId::new(meta.first_event_id + i as u64);
                    checker.check(id, event)?;
                    counters.events += 1;
                    let tid = event.tid;
                    // Deferred admission, mirroring the monolithic
                    // engines: only sync events and *sampled* accesses
                    // widen the sync plane (invariant 10) — a skipped
                    // access must leave the thread table, and with it
                    // the traversal counters of later sync events,
                    // untouched.
                    match event.kind {
                        EventKind::Acquire(lock) => {
                            sync.ensure_thread(tid);
                            sync.acquire(tid, lock, &mut counters);
                        }
                        EventKind::Release(lock) => {
                            sync.ensure_thread(tid);
                            if pending.len() <= tid.index() {
                                pending.resize(tid.index() + 1, false);
                            }
                            let sampled = std::mem::take(&mut pending[tid.index()]);
                            sync.release(tid, lock, sampled, &mut counters);
                        }
                        EventKind::Read(_) | EventKind::Write(_) => {
                            if sampler.sample(id, event) {
                                sync.ensure_thread(tid);
                                if pending.len() <= tid.index() {
                                    pending.resize(tid.index() + 1, false);
                                }
                                pending[tid.index()] = true;
                            }
                        }
                    }
                }

                sync.export_state(&mut start_export);
                if record {
                    let sync_delta = encode_delta(&cache_prev, &start_export);
                    cache_prev = start_export.clone();
                    let mut discipline = Vec::new();
                    checker.export_wire(&mut discipline);
                    coord.push(CoordRecord {
                        meta,
                        new_locks: data.new_locks.clone(),
                        new_vars: data.new_vars.clone(),
                        threads,
                        pending: pending.clone(),
                        discipline,
                        counters,
                        sync_delta,
                    });
                }
            }
            Ok(())
        };
        let outcome = coordinate();
        drop(worker_txs);

        let mut workers = Vec::with_capacity(jobs);
        let mut worker_records = Vec::with_capacity(jobs);
        for handle in handles {
            let (worker, records) = handle.join().expect("worker replay panicked");
            workers.push(worker);
            worker_records.push(records);
        }
        (outcome, workers, worker_records)
    });
    outcome?;

    // Merge. Report sets are disjoint (each worker owns its variables)
    // with at most one report per event, so sorting by EventId
    // reproduces the sequential order exactly; prefix reports all
    // precede replayed ones.
    let mut new_reports: Vec<RaceReport> = Vec::new();
    for worker in &mut workers {
        counters += std::mem::take(&mut worker.access_counters);
        new_reports.append(&mut worker.reports);
    }
    new_reports.sort_by_key(|r| r.event);
    debug_assert!(
        new_reports.windows(2).all(|w| w[0].event < w[1].event),
        "owned-variable partitioning must keep reports unique per event"
    );
    let mut reports = prior_reports;
    reports.extend(new_reports);

    Ok(PipelineOutput {
        analysis: SegmentedAnalysis {
            reports,
            counters,
            threads,
            lock_names,
            var_names,
        },
        coord,
        workers: worker_records,
    })
}

/// One worker's queue loop: advance the seed chain for every dispatched
/// segment, replay the ones that touch an owned variable, and (when
/// recording) export the access shard at every boundary.
fn worker_run<D, S>(
    worker: &mut Worker<D, S>,
    rx: Receiver<Dispatch>,
    worker_idx: usize,
    jobs: usize,
    chain_base: Vec<u8>,
    record: bool,
) -> Vec<WorkerRecord>
where
    D: SplitDetector,
    D::Sync: CheckpointState,
    D::Access: CheckpointState,
    S: Sampler,
{
    let owned = |var: VarId| var.index() % jobs == worker_idx;
    let mut records = Vec::new();
    let mut prev_access_export = chain_base;
    let mut seed_bytes: Vec<u8> = Vec::new();
    while let Ok(item) = rx.recv() {
        // Every item advances the chain (byte splicing, no engine
        // work) so skipped segments still keep `seed_bytes` aligned
        // with the coordinator's export at each boundary.
        seed_bytes = match &item.seed.sync {
            SeedSync::Full(bytes) => bytes.clone(),
            SeedSync::Delta(delta) => apply_delta(&seed_bytes, delta)
                .expect("coordinator-encoded delta must apply to its own chain"),
        };
        let seg_report_start = worker.reports.len();
        let has_owned_access = item.data.events.iter().any(|event| match event.kind {
            EventKind::Read(var) | EventKind::Write(var) => owned(var),
            _ => false,
        });
        if has_owned_access {
            let mut replica = worker.detector.split_sync();
            replica
                .import_state(&seed_bytes)
                .expect("coordinator-exported seed must import");
            let mut pending = item.seed.pending.clone();
            let mut scratch = Counters::new();

            for (i, &event) in item.data.events.iter().enumerate() {
                let id = EventId::new(item.first_event_id + i as u64);
                let tid = event.tid;
                // Same deferred admission as the coordinator: the
                // replica must track the authoritative engine's width
                // exactly, or published view widths would drift from
                // the monolith's.
                match event.kind {
                    EventKind::Acquire(lock) => {
                        replica.ensure_thread(tid);
                        replica.acquire(tid, lock, &mut scratch);
                    }
                    EventKind::Release(lock) => {
                        replica.ensure_thread(tid);
                        if pending.len() <= tid.index() {
                            pending.resize(tid.index() + 1, false);
                        }
                        let sampled = std::mem::take(&mut pending[tid.index()]);
                        replica.release(tid, lock, sampled, &mut scratch);
                    }
                    EventKind::Read(var) | EventKind::Write(var) => {
                        if !worker.sampler.sample(id, event) {
                            // Sampled-out: for an owned access, tally
                            // the observation the way the monolith's
                            // skip path does; unowned skipped accesses
                            // belong to another worker entirely.
                            if owned(var) {
                                crate::plane::tally_access(&event, &mut worker.access_counters);
                            }
                            continue;
                        }
                        replica.ensure_thread(tid);
                        if pending.len() <= tid.index() {
                            pending.resize(tid.index() + 1, false);
                        }
                        pending[tid.index()] = true;
                        if owned(var) {
                            let view = replica.publish(tid);
                            let outcome = worker.access.access_sampled(
                                id,
                                event,
                                &view,
                                &mut worker.access_counters,
                            );
                            debug_assert!(outcome.sampled, "hoisted decision admitted this");
                            if let Some(report) = outcome.report {
                                worker.reports.push(report);
                            }
                        }
                    }
                }
            }
        }
        if record {
            let mut export = Vec::new();
            worker.access.export_state(&mut export);
            let access_delta = encode_delta(&prev_access_export, &export);
            prev_access_export = export;
            records.push(WorkerRecord {
                counters: worker.access_counters,
                access_delta,
                reports: worker.reports[seg_report_start..].to_vec(),
            });
        }
    }
    records
}

/// Rejects a segment whose name-table watermarks disagree with the
/// segments already walked.
fn check_watermarks(
    lock_names: &[String],
    var_names: &[String],
    meta: &SegmentMeta,
) -> Result<(), SourceError> {
    if lock_names.len() != meta.locks_before || var_names.len() != meta.vars_before {
        return Err(BinaryTraceError::new(
            meta.offset,
            "segment name-table watermark disagrees with the preceding segments",
        )
        .into());
    }
    Ok(())
}

/// Appends a segment's name delta, rejecting names already defined by
/// an earlier segment — the cross-segment half of the v1 reader's
/// duplicate check (the in-segment half lives in
/// [`decode_segment`](freshtrack_trace::decode_segment)).
fn merge_names(
    table: &mut Vec<String>,
    fresh: &[String],
    what: &str,
    offset: u64,
) -> Result<(), SourceError> {
    for name in fresh {
        if table.iter().any(|existing| existing == name) {
            return Err(BinaryTraceError::new(
                offset,
                format!("duplicate definition of {what} {name:?}"),
            )
            .into());
        }
        table.push(name.clone());
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Report wire codec (sidecar payloads).
// ---------------------------------------------------------------------

/// Serializes a segment's report slice for a sidecar entry.
fn encode_reports(out: &mut Vec<u8>, reports: &[RaceReport]) {
    wire::put_varint(out, reports.len() as u64);
    for report in reports {
        wire::put_varint(out, report.event.as_u64());
        wire::put_varint(out, u64::from(report.tid.as_u32()));
        wire::put_varint(out, report.var.index() as u64);
        wire::put_bool(out, matches!(report.access, AccessKind::Write));
        wire::put_bool(out, report.with_write);
        wire::put_bool(out, report.with_read);
    }
}

/// Decodes a sidecar entry's report slice.
fn decode_reports(bytes: &[u8]) -> Result<Vec<RaceReport>, WireError> {
    let mut r = WireReader::new(bytes);
    let n = {
        let n = r.get_usize()?;
        if n > r.remaining() {
            return Err(WireError::Truncated);
        }
        n
    };
    let mut reports = Vec::with_capacity(n);
    for _ in 0..n {
        let event = EventId::new(r.get_varint()?);
        let tid = ThreadId::new(r.get_u32()?);
        let var = VarId::new(r.get_u32()?);
        let access = if r.get_bool()? {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let with_write = r.get_bool()?;
        let with_read = r.get_bool()?;
        if !with_write && !with_read {
            return Err(WireError::Invalid("race report with no conflict"));
        }
        reports.push(RaceReport::new(
            event, tid, var, access, with_write, with_read,
        ));
    }
    r.finish()?;
    Ok(reports)
}

// ---------------------------------------------------------------------
// The wave scheduler (previous generation), retained for benchmarking.
// ---------------------------------------------------------------------

struct WaveItem {
    first_event_id: u64,
    data: SegmentData,
    seed: Seed,
}

/// The barriered wave scheduler [`analyze_segments`] replaced: read and
/// decode `jobs` segments, walk them all, replay them all, repeat —
/// every stage fully drains before the next starts, so the file is
/// never being read while an engine runs. Retained (hidden) so
/// `record_baseline` can measure the pipelined scheduler against it on
/// the same corpus; output is byte-identical to [`analyze_segments`].
#[doc(hidden)]
pub fn analyze_segments_waves<D, S, R>(
    file: &mut SegmentedTraceFile<R>,
    detector: &D,
    sampler: &S,
    jobs: usize,
) -> Result<SegmentedAnalysis, SourceError>
where
    D: SplitDetector,
    D::Sync: CheckpointState,
    S: Sampler + Clone + Send,
    R: Read + Seek,
{
    let jobs = jobs.max(1);
    let mut workers: Vec<Worker<D, S>> = (0..jobs)
        .map(|_| Worker {
            detector: detector.clone(),
            access: detector.split_access(),
            sampler: sampler.clone(),
            access_counters: Counters::new(),
            reports: Vec::new(),
        })
        .collect();

    // Coordinator state, persistent across all segments.
    let mut sync = detector.split_sync();
    let mut coordinator_sampler = sampler.clone();
    let mut counters = Counters::new();
    let mut pending: Vec<bool> = Vec::new();
    let mut checker = DisciplineChecker::new();
    let mut lock_names: Vec<String> = Vec::new();
    let mut var_names: Vec<String> = Vec::new();
    let mut threads: u32 = 0;

    let segment_count = file.segment_count();
    let mut next = 0;
    while next < segment_count {
        let wave_end = (next + jobs).min(segment_count);

        // (a) Sequential byte reads, parallel decode.
        let mut metas: Vec<SegmentMeta> = Vec::with_capacity(wave_end - next);
        let mut blobs: Vec<Vec<u8>> = Vec::with_capacity(wave_end - next);
        for k in next..wave_end {
            metas.push(file.meta(k).clone());
            blobs.push(file.read_segment_bytes(k)?);
        }
        let datas: Vec<SegmentData> = if blobs.len() == 1 {
            vec![decode_segment(&blobs[0], &metas[0])?]
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = blobs
                    .iter()
                    .zip(&metas)
                    .map(|(bytes, meta)| scope.spawn(move || decode_segment(bytes, meta)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("segment decode panicked"))
                    .collect::<Result<Vec<_>, BinaryTraceError>>()
            })?
        };
        drop(blobs);

        // (b) Coordinator walk: seeds, name merge, discipline, sync plane.
        let mut wave: Vec<WaveItem> = Vec::with_capacity(datas.len());
        let mut wave_prev_export: Option<Vec<u8>> = None;
        for (meta, data) in metas.iter().zip(datas) {
            check_watermarks(&lock_names, &var_names, meta)?;
            merge_names(&mut lock_names, &data.new_locks, "lock", meta.offset)?;
            merge_names(&mut var_names, &data.new_vars, "var", meta.offset)?;
            threads = threads
                .max(data.declared_threads)
                .max(data.observed_threads);

            let mut seed_sync = Vec::new();
            sync.export_state(&mut seed_sync);
            let sync_seed = match &wave_prev_export {
                None => SeedSync::Full(seed_sync.clone()),
                Some(prev) => SeedSync::Delta(encode_delta(prev, &seed_sync)),
            };
            wave_prev_export = Some(seed_sync);
            let seed = Seed {
                sync: sync_seed,
                pending: pending.clone(),
            };

            for (i, &event) in data.events.iter().enumerate() {
                let id = EventId::new(meta.first_event_id + i as u64);
                checker.check(id, event)?;
                counters.events += 1;
                let tid = event.tid;
                match event.kind {
                    EventKind::Acquire(lock) => {
                        sync.ensure_thread(tid);
                        sync.acquire(tid, lock, &mut counters);
                    }
                    EventKind::Release(lock) => {
                        sync.ensure_thread(tid);
                        if pending.len() <= tid.index() {
                            pending.resize(tid.index() + 1, false);
                        }
                        let sampled = std::mem::take(&mut pending[tid.index()]);
                        sync.release(tid, lock, sampled, &mut counters);
                    }
                    EventKind::Read(_) | EventKind::Write(_) => {
                        if coordinator_sampler.sample(id, event) {
                            sync.ensure_thread(tid);
                            if pending.len() <= tid.index() {
                                pending.resize(tid.index() + 1, false);
                            }
                            pending[tid.index()] = true;
                        }
                    }
                }
            }

            wave.push(WaveItem {
                first_event_id: meta.first_event_id,
                data,
                seed,
            });
        }

        // (c) Parallel worker replay.
        if jobs == 1 {
            replay_wave(&mut workers[0], &wave, 0, jobs);
        } else {
            std::thread::scope(|scope| {
                let wave = &wave;
                let handles: Vec<_> = workers
                    .drain(..)
                    .enumerate()
                    .map(|(idx, mut worker)| {
                        scope.spawn(move || {
                            replay_wave(&mut worker, wave, idx, jobs);
                            worker
                        })
                    })
                    .collect();
                workers.extend(
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("worker replay panicked")),
                );
            });
        }

        next = wave_end;
    }

    // (d) Merge, exactly like the pipelined scheduler.
    let mut reports: Vec<RaceReport> = Vec::new();
    for worker in &mut workers {
        counters += std::mem::take(&mut worker.access_counters);
        reports.append(&mut worker.reports);
    }
    reports.sort_by_key(|r| r.event);

    Ok(SegmentedAnalysis {
        reports,
        counters,
        threads,
        lock_names,
        var_names,
    })
}

/// One worker's replay of one wave (wave scheduler only).
fn replay_wave<D, S>(worker: &mut Worker<D, S>, wave: &[WaveItem], worker_idx: usize, jobs: usize)
where
    D: SplitDetector,
    D::Sync: CheckpointState,
    S: Sampler,
{
    let owned = |var: VarId| var.index() % jobs == worker_idx;
    let mut seed_bytes: Vec<u8> = Vec::new();
    for item in wave {
        seed_bytes = match &item.seed.sync {
            SeedSync::Full(bytes) => bytes.clone(),
            SeedSync::Delta(delta) => apply_delta(&seed_bytes, delta)
                .expect("coordinator-encoded delta must apply to its own chain"),
        };
        let has_owned_access = item.data.events.iter().any(|event| match event.kind {
            EventKind::Read(var) | EventKind::Write(var) => owned(var),
            _ => false,
        });
        if !has_owned_access {
            continue;
        }

        let mut replica = worker.detector.split_sync();
        replica
            .import_state(&seed_bytes)
            .expect("coordinator-exported seed must import");
        let mut pending = item.seed.pending.clone();
        let mut scratch = Counters::new();

        for (i, &event) in item.data.events.iter().enumerate() {
            let id = EventId::new(item.first_event_id + i as u64);
            let tid = event.tid;
            match event.kind {
                EventKind::Acquire(lock) => {
                    replica.ensure_thread(tid);
                    replica.acquire(tid, lock, &mut scratch);
                }
                EventKind::Release(lock) => {
                    replica.ensure_thread(tid);
                    if pending.len() <= tid.index() {
                        pending.resize(tid.index() + 1, false);
                    }
                    let sampled = std::mem::take(&mut pending[tid.index()]);
                    replica.release(tid, lock, sampled, &mut scratch);
                }
                EventKind::Read(var) | EventKind::Write(var) => {
                    if !worker.sampler.sample(id, event) {
                        if owned(var) {
                            crate::plane::tally_access(&event, &mut worker.access_counters);
                        }
                        continue;
                    }
                    replica.ensure_thread(tid);
                    if pending.len() <= tid.index() {
                        pending.resize(tid.index() + 1, false);
                    }
                    pending[tid.index()] = true;
                    if owned(var) {
                        let view = replica.publish(tid);
                        let outcome = worker.access.access_sampled(
                            id,
                            event,
                            &view,
                            &mut worker.access_counters,
                        );
                        debug_assert!(outcome.sampled, "hoisted decision admitted this access");
                        if let Some(report) = outcome.report {
                            worker.reports.push(report);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_codec_round_trips() {
        let reports = vec![
            RaceReport::new(
                EventId::new(7),
                ThreadId::new(2),
                VarId::new(5),
                AccessKind::Write,
                true,
                true,
            ),
            RaceReport::new(
                EventId::new(1_000_000),
                ThreadId::new(0),
                VarId::new(0),
                AccessKind::Read,
                true,
                false,
            ),
        ];
        let mut bytes = Vec::new();
        encode_reports(&mut bytes, &reports);
        assert_eq!(decode_reports(&bytes).unwrap(), reports);
        assert_eq!(
            decode_reports(&{
                let mut b = Vec::new();
                encode_reports(&mut b, &[]);
                b
            })
            .unwrap(),
            Vec::new()
        );
    }

    #[test]
    fn report_codec_rejects_truncation_and_trailing_bytes() {
        let reports = vec![RaceReport::new(
            EventId::new(3),
            ThreadId::new(1),
            VarId::new(4),
            AccessKind::Read,
            false,
            true,
        )];
        let mut bytes = Vec::new();
        encode_reports(&mut bytes, &reports);
        for cut in 0..bytes.len() {
            assert!(decode_reports(&bytes[..cut]).is_err(), "cut={cut}");
        }
        bytes.push(0);
        assert!(decode_reports(&bytes).is_err());
    }
}
