//! Checkpointed parallel analysis of segmented `.ftb` v2 trace files.
//!
//! [`analyze_segments`] replays a [`SegmentedTraceFile`] with one
//! sequential *coordinator* and `jobs` *worker* replicas, producing
//! reports and counters **byte-identical** to a sequential
//! [`Detector::run_source`](crate::Detector::run_source) pass over the
//! same stream (the differential suite in `tests/parallel.rs` pins
//! this). The design follows the two-plane seam of [`crate::plane`]:
//!
//! * The **coordinator** walks segments in order, driving the one
//!   authoritative sync engine (`D::Sync`) over every acquire/release —
//!   exactly the operation sequence the monolithic detector performs,
//!   so the sync-side counters match to the last `deep_copy`. Before
//!   each segment it exports the engine via
//!   [`CheckpointState::export_state`] as the segment's *seed* — the
//!   first segment of each wave as the full byte image, the rest as
//!   [`encode_delta`](crate::checkpoint::encode_delta) diffs against
//!   the previous boundary's export (consecutive exports share most of
//!   their bytes, so the chain is far smaller than `jobs` full
//!   checkpoints). It also
//!   runs the cross-segment duplicate-name check and the locking
//!   discipline check the sequential path gets from
//!   [`Validated`](freshtrack_trace::Validated).
//! * Each **worker** owns the variables with `var.index() % jobs ==
//!   worker_index` plus one access-plane shard
//!   ([`SplitDetector::split_access`]). Per segment it builds a fresh
//!   sync replica, imports the seed, and replays *all* of the segment's
//!   events — sync events mutate the replica (work counted into
//!   discarded scratch counters), owned accesses are analyzed against
//!   the replica's published view, unowned accesses only feed the
//!   sampler so the per-thread `RelAfter_S` bits stay exact. Imports
//!   sever all clock sharing, but sharing never changes clock *values*,
//!   so verdicts are unaffected; replica-side sharing counters are
//!   scratch precisely because they are the one thing import skews.
//! * Segments are processed in *waves* of `jobs`: bytes are read
//!   sequentially (one file handle), decoded in parallel
//!   ([`decode_segment`] is pure), walked by the coordinator, then
//!   replayed by all workers concurrently under
//!   [`std::thread::scope`].
//!
//! Every event is sampler-evaluated once per party that needs its bit,
//! which is sound because sampling is a pure function of `(seed,
//! EventId)` — invariant 4 in `ARCHITECTURE.md`. Final counters are
//! `coordinator + Σ workers`: the coordinator contributes `events` and
//! all sync-plane work, workers contribute all access-plane work, and
//! the two partitions are exactly the monolith's split of the same
//! fields.

use std::io::{Read, Seek};

use freshtrack_sampling::Sampler;
use freshtrack_trace::{
    decode_segment, BinaryTraceError, DisciplineChecker, EventId, EventKind, SegmentData,
    SegmentMeta, SegmentedTraceFile, SourceError,
};

use crate::checkpoint::CheckpointState;
use crate::plane::{AccessEngine, SplitDetector, SyncEngine};
use crate::{Counters, RaceReport};

/// The merged result of a parallel segmented analysis.
#[derive(Clone, Debug)]
pub struct SegmentedAnalysis {
    /// All race reports, strictly sorted by racing
    /// [`EventId`](freshtrack_trace::EventId) — the same order the
    /// sequential pass produces.
    pub reports: Vec<RaceReport>,
    /// Coordinator plus worker counters, field-identical to a
    /// sequential run's.
    pub counters: Counters,
    /// Threads in the trace (declared or observed, whichever is
    /// larger).
    pub threads: u32,
    /// The merged lock name table.
    pub lock_names: Vec<String>,
    /// The merged variable name table.
    pub var_names: Vec<String>,
}

/// A segment's seed: the authoritative engine state and pending
/// `RelAfter_S` bits as of the segment's first event.
struct Seed {
    sync: SeedSync,
    pending: Vec<bool>,
}

/// The sync half of a seed. Consecutive exports differ only where
/// clocks moved during one segment, so only the first segment of a
/// wave ships the full checkpoint; the rest carry
/// [`encode_delta`](crate::checkpoint::encode_delta) diffs against the
/// previous segment's export, and every worker replays the chain in
/// order (cheap byte splicing) while importing only the segments it
/// owns.
enum SeedSync {
    /// A full [`CheckpointState::export_state`] image (wave base).
    Full(Vec<u8>),
    /// A delta against the previous segment's export.
    Delta(Vec<u8>),
}

struct WaveItem {
    first_event_id: u64,
    data: SegmentData,
    seed: Seed,
}

struct Worker<D: SplitDetector, S> {
    detector: D,
    access: D::Access,
    sampler: S,
    access_counters: Counters,
    reports: Vec<RaceReport>,
}

/// Replays a segmented trace file in parallel; see the module docs for
/// the architecture and the equivalence argument.
///
/// `detector` must be in its initial state (it supplies configuration —
/// engine options and sampler seed — via [`SplitDetector`], never
/// accumulated state), and `sampler` must make the same decisions as
/// the detector's own sampler (same seed); the CLI constructs both from
/// one `--seed`. `jobs` is clamped to at least 1; `jobs == 1` degrades
/// to a single worker without losing the byte-identity guarantee.
///
/// # Errors
///
/// Any [`SourceError`] a sequential pass over the same file would hit:
/// corrupt segment bytes or checksums ([`SourceError::Binary`]),
/// cross-segment duplicate name definitions (`Binary`, anchored at the
/// offending segment's offset), or locking-discipline violations
/// ([`SourceError::Discipline`]). Reports gathered before the error are
/// dropped with it, exactly like
/// [`Detector::run_source`](crate::Detector::run_source).
///
/// # Panics
///
/// Panics if a worker thread panics (a bug in an engine, never an input
/// property), or if a coordinator-exported seed fails to import (the
/// export/import pair is exercised by the checkpoint suite).
pub fn analyze_segments<D, S, R>(
    file: &mut SegmentedTraceFile<R>,
    detector: &D,
    sampler: &S,
    jobs: usize,
) -> Result<SegmentedAnalysis, SourceError>
where
    D: SplitDetector,
    D::Sync: CheckpointState,
    S: Sampler + Clone + Send,
    R: Read + Seek,
{
    let jobs = jobs.max(1);
    let mut workers: Vec<Worker<D, S>> = (0..jobs)
        .map(|_| Worker {
            detector: detector.clone(),
            access: detector.split_access(),
            sampler: sampler.clone(),
            access_counters: Counters::new(),
            reports: Vec::new(),
        })
        .collect();

    // Coordinator state, persistent across all segments.
    let mut sync = detector.split_sync();
    let mut coordinator_sampler = sampler.clone();
    let mut counters = Counters::new();
    let mut pending: Vec<bool> = Vec::new();
    let mut checker = DisciplineChecker::new();
    let mut lock_names: Vec<String> = Vec::new();
    let mut var_names: Vec<String> = Vec::new();
    let mut threads: u32 = 0;

    let segment_count = file.segment_count();
    let mut next = 0;
    while next < segment_count {
        let wave_end = (next + jobs).min(segment_count);

        // (a) Sequential byte reads, parallel decode.
        let mut metas: Vec<SegmentMeta> = Vec::with_capacity(wave_end - next);
        let mut blobs: Vec<Vec<u8>> = Vec::with_capacity(wave_end - next);
        for k in next..wave_end {
            metas.push(file.meta(k).clone());
            blobs.push(file.read_segment_bytes(k)?);
        }
        let datas: Vec<SegmentData> = if blobs.len() == 1 {
            vec![decode_segment(&blobs[0], &metas[0])?]
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = blobs
                    .iter()
                    .zip(&metas)
                    .map(|(bytes, meta)| scope.spawn(move || decode_segment(bytes, meta)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("segment decode panicked"))
                    .collect::<Result<Vec<_>, BinaryTraceError>>()
            })?
        };
        drop(blobs);

        // (b) Coordinator walk: seeds, name merge, discipline, sync plane.
        let mut wave: Vec<WaveItem> = Vec::with_capacity(datas.len());
        let mut wave_prev_export: Option<Vec<u8>> = None;
        for (meta, data) in metas.iter().zip(datas) {
            if lock_names.len() != meta.locks_before || var_names.len() != meta.vars_before {
                return Err(BinaryTraceError::new(
                    meta.offset,
                    "segment name-table watermark disagrees with the preceding segments",
                )
                .into());
            }
            merge_names(&mut lock_names, &data.new_locks, "lock", meta.offset)?;
            merge_names(&mut var_names, &data.new_vars, "var", meta.offset)?;
            threads = threads
                .max(data.declared_threads)
                .max(data.observed_threads);

            let mut seed_sync = Vec::new();
            sync.export_state(&mut seed_sync);
            let sync_seed = match &wave_prev_export {
                None => SeedSync::Full(seed_sync.clone()),
                Some(prev) => SeedSync::Delta(crate::checkpoint::encode_delta(prev, &seed_sync)),
            };
            wave_prev_export = Some(seed_sync);
            let seed = Seed {
                sync: sync_seed,
                pending: pending.clone(),
            };

            for (i, &event) in data.events.iter().enumerate() {
                let id = EventId::new(meta.first_event_id + i as u64);
                checker.check(id, event)?;
                counters.events += 1;
                let tid = event.tid;
                // Deferred admission, mirroring the monolithic engines:
                // only sync events and *sampled* accesses widen the
                // sync plane (invariant 10) — a skipped access must
                // leave the thread table, and with it the traversal
                // counters of later sync events, untouched.
                match event.kind {
                    EventKind::Acquire(lock) => {
                        sync.ensure_thread(tid);
                        sync.acquire(tid, lock, &mut counters);
                    }
                    EventKind::Release(lock) => {
                        sync.ensure_thread(tid);
                        if pending.len() <= tid.index() {
                            pending.resize(tid.index() + 1, false);
                        }
                        let sampled = std::mem::take(&mut pending[tid.index()]);
                        sync.release(tid, lock, sampled, &mut counters);
                    }
                    EventKind::Read(_) | EventKind::Write(_) => {
                        if coordinator_sampler.sample(id, event) {
                            sync.ensure_thread(tid);
                            if pending.len() <= tid.index() {
                                pending.resize(tid.index() + 1, false);
                            }
                            pending[tid.index()] = true;
                        }
                    }
                }
            }

            wave.push(WaveItem {
                first_event_id: meta.first_event_id,
                data,
                seed,
            });
        }

        // (c) Parallel worker replay.
        if jobs == 1 {
            replay_wave(&mut workers[0], &wave, 0, jobs);
        } else {
            std::thread::scope(|scope| {
                let wave = &wave;
                let handles: Vec<_> = workers
                    .drain(..)
                    .enumerate()
                    .map(|(idx, mut worker)| {
                        scope.spawn(move || {
                            replay_wave(&mut worker, wave, idx, jobs);
                            worker
                        })
                    })
                    .collect();
                workers.extend(
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("worker replay panicked")),
                );
            });
        }

        next = wave_end;
    }

    // (d) Merge. Report sets are disjoint (each worker owns its
    // variables) with at most one report per event, so sorting by
    // EventId reproduces the sequential order exactly.
    let mut reports: Vec<RaceReport> = Vec::new();
    for worker in &mut workers {
        counters += std::mem::take(&mut worker.access_counters);
        reports.append(&mut worker.reports);
    }
    reports.sort_by_key(|r| r.event);
    debug_assert!(
        reports.windows(2).all(|w| w[0].event < w[1].event),
        "owned-variable partitioning must keep reports unique per event"
    );

    Ok(SegmentedAnalysis {
        reports,
        counters,
        threads,
        lock_names,
        var_names,
    })
}

/// Appends a segment's name delta, rejecting names already defined by
/// an earlier segment — the cross-segment half of the v1 reader's
/// duplicate check (the in-segment half lives in
/// [`decode_segment`](freshtrack_trace::decode_segment)).
fn merge_names(
    table: &mut Vec<String>,
    fresh: &[String],
    what: &str,
    offset: u64,
) -> Result<(), SourceError> {
    for name in fresh {
        if table.iter().any(|existing| existing == name) {
            return Err(BinaryTraceError::new(
                offset,
                format!("duplicate definition of {what} {name:?}"),
            )
            .into());
        }
        table.push(name.clone());
    }
    Ok(())
}

/// One worker's replay of one wave: for each segment that contains an
/// owned access, rebuild a replica from the seed and replay the whole
/// segment (sync events into the replica, owned accesses through the
/// access shard, unowned accesses into the sampler for the pending
/// bits).
fn replay_wave<D, S>(worker: &mut Worker<D, S>, wave: &[WaveItem], worker_idx: usize, jobs: usize)
where
    D: SplitDetector,
    D::Sync: CheckpointState,
    S: Sampler,
{
    let owned = |var: freshtrack_trace::VarId| var.index() % jobs == worker_idx;
    // The wave's seed chain: a full export for the first segment, then
    // deltas. Every item advances the chain (byte splicing, no engine
    // work) so skipped segments still keep `seed_bytes` aligned with
    // the coordinator's export at each boundary.
    let mut seed_bytes: Vec<u8> = Vec::new();
    for item in wave {
        seed_bytes = match &item.seed.sync {
            SeedSync::Full(bytes) => bytes.clone(),
            SeedSync::Delta(delta) => crate::checkpoint::apply_delta(&seed_bytes, delta)
                .expect("coordinator-encoded delta must apply to its own chain"),
        };
        let has_owned_access = item.data.events.iter().any(|event| match event.kind {
            EventKind::Read(var) | EventKind::Write(var) => owned(var),
            _ => false,
        });
        if !has_owned_access {
            continue;
        }

        let mut replica = worker.detector.split_sync();
        replica
            .import_state(&seed_bytes)
            .expect("coordinator-exported seed must import");
        let mut pending = item.seed.pending.clone();
        let mut scratch = Counters::new();

        for (i, &event) in item.data.events.iter().enumerate() {
            let id = EventId::new(item.first_event_id + i as u64);
            let tid = event.tid;
            // Same deferred admission as the coordinator: the replica
            // must track the authoritative engine's width exactly, or
            // published view widths would drift from the monolith's.
            match event.kind {
                EventKind::Acquire(lock) => {
                    replica.ensure_thread(tid);
                    replica.acquire(tid, lock, &mut scratch);
                }
                EventKind::Release(lock) => {
                    replica.ensure_thread(tid);
                    if pending.len() <= tid.index() {
                        pending.resize(tid.index() + 1, false);
                    }
                    let sampled = std::mem::take(&mut pending[tid.index()]);
                    replica.release(tid, lock, sampled, &mut scratch);
                }
                EventKind::Read(var) | EventKind::Write(var) => {
                    if !worker.sampler.sample(id, event) {
                        // Sampled-out: for an owned access, tally the
                        // observation the way the monolith's skip path
                        // does; unowned skipped accesses belong to
                        // another worker entirely.
                        if owned(var) {
                            crate::plane::tally_access(&event, &mut worker.access_counters);
                        }
                        continue;
                    }
                    replica.ensure_thread(tid);
                    if pending.len() <= tid.index() {
                        pending.resize(tid.index() + 1, false);
                    }
                    pending[tid.index()] = true;
                    if owned(var) {
                        let view = replica.publish(tid);
                        let outcome = worker.access.access_sampled(
                            id,
                            event,
                            &view,
                            &mut worker.access_counters,
                        );
                        debug_assert!(outcome.sampled, "hoisted decision admitted this access");
                        if let Some(report) = outcome.report {
                            worker.reports.push(report);
                        }
                    }
                }
            }
        }
    }
}
