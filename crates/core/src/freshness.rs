use freshtrack_clock::{
    wire::{self, WireReader},
    FreshnessClock, SharedVectorClock, ThreadId, Time, VectorClock, VectorClockSnapshot,
};
use freshtrack_sampling::Sampler;
use freshtrack_trace::{Event, EventId, EventKind, LockId};

use crate::checkpoint::{self, CheckpointError, CheckpointState};
use crate::plane::{BorrowedView, EpochView, HistoryAccessEngine, SplitDetector, SyncEngine};
use crate::{Counters, Detector, RaceReport};

/// Algorithm 3 of the paper (**SU**): sampling timestamps plus
/// *freshness timestamps*.
///
/// Every thread and lock additionally carries a [`FreshnessClock`] `U`
/// counting how many entries of each thread's sampling clock have
/// changed. Because a scalar comparison of `U` entries can prove that a
/// synchronization message is redundant (Proposition 5), the handlers
/// can *skip* acquires whose lock clock carries nothing new, and skip
/// the lock-clock copy at releases when the thread has learned nothing
/// since the lock last saw it.
///
/// Like the other sampling engines the detector is a composition of its
/// two planes — a [`FreshnessSyncEngine`] and a [`HistoryAccessEngine`]
/// over the epoch-spliced view (see [`SplitDetector`]).
///
/// Race reports are identical to [`NaiveSamplingDetector`]'s for the same
/// sample set (Lemma 7); only the amount of clock work differs, visible
/// in [`Counters::acquires_skipped`] and
/// [`Counters::releases_processed`].
///
/// [`NaiveSamplingDetector`]: crate::NaiveSamplingDetector
///
/// # Example
///
/// ```
/// use freshtrack_core::{Detector, FreshnessDetector};
/// use freshtrack_sampling::NeverSampler;
/// use freshtrack_trace::TraceBuilder;
///
/// let mut b = TraceBuilder::new();
/// let l = b.lock("l");
/// for _ in 0..100 {
///     b.acquire(0, l).release(0, l);
///     b.acquire(1, l).release(1, l);
/// }
/// let mut su = FreshnessDetector::new(NeverSampler::new());
/// su.run(&b.build());
/// // With nothing sampled, every acquire after warm-up is redundant.
/// assert!(su.counters().acquire_skip_ratio() > 0.9);
/// ```
#[derive(Clone, Debug)]
pub struct FreshnessDetector<S> {
    sync: FreshnessSyncEngine,
    access: HistoryAccessEngine<S>,
    /// `RelAfter_S` bits, as in
    /// [`OrderedListDetector`](crate::OrderedListDetector).
    sampled: Vec<bool>,
    counters: Counters,
}

#[derive(Clone, Debug)]
struct ThreadState {
    clock: SharedVectorClock,
    fresh: FreshnessClock,
    epoch: Time,
}

impl Default for ThreadState {
    fn default() -> Self {
        ThreadState {
            clock: SharedVectorClock::new(),
            fresh: FreshnessClock::new(),
            epoch: 1,
        }
    }
}

#[derive(Clone, Debug, Default)]
struct LockState {
    clock: VectorClock,
    fresh: FreshnessClock,
    /// `LRℓ`: the last thread to release this lock.
    last_releaser: Option<ThreadId>,
    /// Entered by a `Release`-join (Appendix A.2): the clock carries
    /// information from multiple threads, so the freshness fast path is
    /// disabled until the next store overwrites it.
    mixed: bool,
}

/// The sync-plane half of the SU engine: Algorithm 3's thread/lock
/// sampling clocks *and* freshness clocks, held exactly once.
#[derive(Clone, Debug, Default)]
pub struct FreshnessSyncEngine {
    threads: Vec<ThreadState>,
    locks: Vec<LockState>,
}

impl FreshnessSyncEngine {
    /// Creates an empty sync engine.
    pub fn new() -> Self {
        FreshnessSyncEngine::default()
    }

    fn ensure_lock(&mut self, lock: LockId) {
        if self.locks.len() <= lock.index() {
            self.locks.resize_with(lock.index() + 1, LockState::default);
        }
    }

    /// Number of threads observed so far.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    fn thread_view(&self, tid: ThreadId) -> (&SharedVectorClock, Time) {
        let state = &self.threads[tid.index()];
        (&state.clock, state.epoch)
    }

    /// Flushes the local epoch if this release is in `RelAfter_S`.
    fn flush_local_epoch(&mut self, tid: ThreadId, sampled: bool, counters: &mut Counters) {
        let thread = &mut self.threads[tid.index()];
        if sampled {
            let (clock, deep) = thread.clock.make_mut();
            if deep {
                counters.deep_copies += 1;
            }
            clock.set(tid, thread.epoch);
            thread.fresh.bump(tid);
            thread.epoch += 1;
            counters.local_increments += 1;
        }
    }

    /// `ReleaseStore` semantics for non-mutex sync objects: always copy
    /// (the store need not follow an acquire by the same thread, so the
    /// release skip of Algorithm 3 would be unsound — Appendix A.2).
    pub(crate) fn release_store(
        &mut self,
        tid: ThreadId,
        sync: LockId,
        sampled: bool,
        counters: &mut Counters,
    ) {
        self.ensure_lock(sync);
        counters.releases += 1;
        self.flush_local_epoch(tid, sampled, counters);
        let thread = &self.threads[tid.index()];
        let lock_state = &mut self.locks[sync.index()];
        lock_state.clock.assign_from(thread.clock.clock());
        lock_state.fresh.assign_from(&thread.fresh);
        lock_state.last_releaser = Some(tid);
        lock_state.mixed = false;
        counters.releases_processed += 1;
        counters.vc_ops += 2;
        counters.entries_traversed += self.threads.len() as u64;
    }

    /// `Release` (join) semantics for non-mutex sync objects
    /// (Appendix A.2): the object accumulates multiple threads' clocks.
    pub(crate) fn release_join(
        &mut self,
        tid: ThreadId,
        sync: LockId,
        sampled: bool,
        counters: &mut Counters,
    ) {
        self.ensure_lock(sync);
        counters.releases += 1;
        self.flush_local_epoch(tid, sampled, counters);
        let thread = &self.threads[tid.index()];
        let lock_state = &mut self.locks[sync.index()];
        lock_state.clock.join(thread.clock.clock());
        lock_state.fresh.join(&thread.fresh);
        lock_state.last_releaser = None;
        lock_state.mixed = true;
        counters.releases_processed += 1;
        counters.vc_ops += 2;
        counters.entries_traversed += self.threads.len() as u64;
    }
}

impl CheckpointState for FreshnessSyncEngine {
    fn export_state(&self, out: &mut Vec<u8>) {
        wire::put_varint(out, self.threads.len() as u64);
        for thread in &self.threads {
            wire::put_clock(out, thread.clock.clock());
            wire::put_fresh(out, &thread.fresh);
            wire::put_varint(out, thread.epoch);
        }
        wire::put_varint(out, self.locks.len() as u64);
        for lock in &self.locks {
            wire::put_clock(out, &lock.clock);
            wire::put_fresh(out, &lock.fresh);
            wire::put_bool(out, lock.last_releaser.is_some());
            if let Some(lr) = lock.last_releaser {
                wire::put_varint(out, u64::from(lr.as_u32()));
            }
            wire::put_bool(out, lock.mixed);
        }
    }

    fn import_state(&mut self, bytes: &[u8]) -> Result<(), CheckpointError> {
        let mut r = WireReader::new(bytes);
        let n = checkpoint::get_count(&mut r)?;
        let mut threads = Vec::with_capacity(n);
        for _ in 0..n {
            threads.push(ThreadState {
                clock: SharedVectorClock::from_clock(r.get_clock()?),
                fresh: r.get_fresh()?,
                epoch: r.get_varint()?,
            });
        }
        let n = checkpoint::get_count(&mut r)?;
        let mut locks = Vec::with_capacity(n);
        for _ in 0..n {
            locks.push(LockState {
                clock: r.get_clock()?,
                fresh: r.get_fresh()?,
                last_releaser: if r.get_bool()? {
                    Some(ThreadId::new(r.get_u32()?))
                } else {
                    None
                },
                mixed: r.get_bool()?,
            });
        }
        r.finish()?;
        self.threads = threads;
        self.locks = locks;
        Ok(())
    }
}

impl SyncEngine for FreshnessSyncEngine {
    type View = EpochView<VectorClockSnapshot>;

    fn ensure_thread(&mut self, tid: ThreadId) {
        if self.threads.len() <= tid.index() {
            self.threads
                .resize_with(tid.index() + 1, ThreadState::default);
        }
    }

    fn acquire(&mut self, tid: ThreadId, lock: LockId, counters: &mut Counters) {
        counters.acquires += 1;
        self.ensure_lock(lock);
        let lock_state = &self.locks[lock.index()];
        if lock_state.mixed {
            // Join-mode object (Appendix A.2): no freshness fast path.
            counters.acquires_processed += 1;
            let lock_state = &self.locks[lock.index()];
            let thread = &mut self.threads[tid.index()];
            thread.fresh.join(&lock_state.fresh);
            let (clock, deep) = thread.clock.make_mut();
            if deep {
                counters.deep_copies += 1;
            }
            let changed = clock.join(&lock_state.clock);
            if changed > 0 {
                thread.fresh.bump_by(tid, changed as Time);
            }
            counters.vc_ops += 2;
            counters.entries_traversed += self.threads.len() as u64;
            return;
        }
        let Some(lr) = lock_state.last_releaser else {
            // Never released: the lock clock is ⊥, nothing to learn.
            counters.acquires_skipped += 1;
            return;
        };
        let thread = &self.threads[tid.index()];
        if lock_state.fresh.get(lr) <= thread.fresh.get(lr) {
            // Proposition 5: Cℓ ⊑ C_t — the join would be a no-op.
            counters.acquires_skipped += 1;
            return;
        }
        counters.acquires_processed += 1;
        let lock_state = &self.locks[lock.index()];
        let thread = &mut self.threads[tid.index()];
        thread.fresh.join(&lock_state.fresh);
        // Entry-wise join of the C clock, counting changed entries so the
        // own freshness component stays an exact change count (VT).
        let (clock, deep) = thread.clock.make_mut();
        if deep {
            counters.deep_copies += 1;
        }
        let changed = clock.join(&lock_state.clock);
        if changed > 0 {
            thread.fresh.bump_by(tid, changed as Time);
        }
        counters.vc_ops += 2;
        counters.entries_traversed += self.threads.len() as u64;
    }

    fn release(
        &mut self,
        tid: ThreadId,
        lock: LockId,
        sampled_since_release: bool,
        counters: &mut Counters,
    ) {
        counters.releases += 1;
        self.ensure_lock(lock);
        self.flush_local_epoch(tid, sampled_since_release, counters);
        let thread = &self.threads[tid.index()];
        let lock_state = &mut self.locks[lock.index()];
        lock_state.last_releaser = Some(tid);
        lock_state.mixed = false;
        if thread.fresh.get(tid) != lock_state.fresh.get(tid) {
            // The release copy never needs the change count: memcpy.
            lock_state.clock.assign_from(thread.clock.clock());
            lock_state.fresh.assign_from(&thread.fresh);
            counters.releases_processed += 1;
            counters.vc_ops += 2;
            counters.entries_traversed += self.threads.len() as u64;
        } else {
            // The lock already carries this thread's current timestamp.
            counters.releases_skipped += 1;
        }
    }

    fn publish(&mut self, tid: ThreadId) -> EpochView<VectorClockSnapshot> {
        let state = &mut self.threads[tid.index()];
        EpochView {
            snap: state.clock.snapshot(),
            epoch: state.epoch,
            tid,
        }
    }

    fn publish_dense(&mut self, tid: ThreadId, width_cap: usize, out: &mut Vec<Time>) {
        // Memcpy of the communicated clock with the (lazily kept) local
        // epoch spliced in at the owner's entry — the dense `C_t[t ↦ e_t]`.
        let state = &self.threads[tid.index()];
        let times = state.clock.clock().times();
        let n = times.len().min(width_cap.max(tid.index() + 1));
        out.clear();
        out.extend_from_slice(&times[..n]);
        if out.len() <= tid.index() {
            out.resize(tid.index() + 1, 0);
        }
        out[tid.index()] = state.epoch;
    }

    fn reserve_threads(&mut self, n: usize) {
        if n == 0 {
            return;
        }
        let last = ThreadId::new(n as u32 - 1);
        self.ensure_thread(last);
        for state in &mut self.threads {
            let (clock, _) = state.clock.make_mut();
            let pad = clock.get(last);
            clock.set(last, pad);
        }
    }
}

impl<S: Sampler> FreshnessDetector<S> {
    /// Creates a detector using `sampler` to pick the sample set.
    pub fn new(sampler: S) -> Self {
        FreshnessDetector {
            sync: FreshnessSyncEngine::new(),
            access: HistoryAccessEngine::new(sampler),
            sampled: Vec::new(),
            counters: Counters::new(),
        }
    }

    fn ensure_thread(&mut self, tid: ThreadId) {
        self.sync.ensure_thread(tid);
        if self.sampled.len() <= tid.index() {
            self.sampled.resize(tid.index() + 1, false);
        }
    }

    fn take_sampled(&mut self, tid: ThreadId) -> bool {
        std::mem::take(&mut self.sampled[tid.index()])
    }
}

impl<S: Sampler> Detector for FreshnessDetector<S> {
    fn process(&mut self, id: EventId, event: Event) -> Option<RaceReport> {
        // Hoisted-first: a skipped access is a tally and nothing else
        // (invariant 10).
        if let EventKind::Read(_) | EventKind::Write(_) = event.kind {
            if !crate::plane::AccessEngine::decide(&self.access, id, event) {
                self.counters.events += 1;
                crate::plane::tally_access(&event, &mut self.counters);
                return None;
            }
        }
        self.process_admitted(id, event)
    }

    fn process_admitted(&mut self, id: EventId, event: Event) -> Option<RaceReport> {
        self.counters.events += 1;
        let tid = event.tid;
        match event.kind {
            EventKind::Read(_) | EventKind::Write(_) => {
                self.ensure_thread(tid);
                let Self {
                    sync,
                    access,
                    sampled,
                    counters,
                } = self;
                let (clock, epoch) = sync.thread_view(tid);
                let view = BorrowedView {
                    lookup: |u| if u == tid { epoch } else { clock.get(u) },
                    width: sync.thread_count(),
                };
                let outcome = access.access_sampled_with(id, event, &view, counters);
                if outcome.sampled {
                    sampled[tid.index()] = true;
                }
                outcome.report
            }
            EventKind::Acquire(lock) => {
                self.ensure_thread(tid);
                self.sync.acquire(tid, lock, &mut self.counters);
                None
            }
            EventKind::Release(lock) => {
                self.ensure_thread(tid);
                let sampled = self.take_sampled(tid);
                self.sync.release(tid, lock, sampled, &mut self.counters);
                None
            }
        }
    }

    fn counters(&self) -> &Counters {
        &self.counters
    }

    fn reserve_threads(&mut self, n: usize) {
        if n == 0 {
            return;
        }
        self.ensure_thread(ThreadId::new(n as u32 - 1));
        self.sync.reserve_threads(n);
    }

    fn name(&self) -> &'static str {
        "SU"
    }

    fn hoisted_decider(&self) -> Option<crate::HoistedDecider> {
        let sampler = self.access.sampler().clone();
        Some(Box::new(move |id, event| sampler.decide(id, event)))
    }

    fn record_skipped_accesses(&mut self, reads: u64, writes: u64) {
        self.counters.fold_skipped_accesses(reads, writes);
    }
}

impl<S> CheckpointState for FreshnessDetector<S> {
    fn export_state(&self, out: &mut Vec<u8>) {
        checkpoint::put_detector(out, &self.sync, &self.access, &self.sampled, &self.counters);
    }

    fn import_state(&mut self, bytes: &[u8]) -> Result<(), CheckpointError> {
        let (sampled, counters) =
            checkpoint::get_detector(bytes, &mut self.sync, &mut self.access)?;
        self.sampled = sampled;
        self.counters = counters;
        Ok(())
    }
}

impl<S: Sampler + Clone + Send> SplitDetector for FreshnessDetector<S> {
    type Sync = FreshnessSyncEngine;
    type Access = HistoryAccessEngine<S>;
    type View = EpochView<VectorClockSnapshot>;

    fn split_sync(&self) -> FreshnessSyncEngine {
        FreshnessSyncEngine::new()
    }

    fn split_access(&self) -> Self::Access {
        self.access.clone()
    }
}

impl<S: Sampler> crate::SyncOps for FreshnessDetector<S> {
    fn release_store(&mut self, tid: u32, sync: LockId) {
        let tid = ThreadId::new(tid);
        self.ensure_thread(tid);
        let sampled = self.take_sampled(tid);
        self.sync
            .release_store(tid, sync, sampled, &mut self.counters);
    }

    fn release_join(&mut self, tid: u32, sync: LockId) {
        let tid = ThreadId::new(tid);
        self.ensure_thread(tid);
        let sampled = self.take_sampled(tid);
        self.sync
            .release_join(tid, sync, sampled, &mut self.counters);
    }

    fn acquire_sync(&mut self, tid: u32, sync: LockId) {
        let tid = ThreadId::new(tid);
        self.ensure_thread(tid);
        // `acquire` already falls back to a full join for mixed objects
        // and uses the freshness skip after stores.
        self.sync.acquire(tid, sync, &mut self.counters);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NaiveSamplingDetector;
    use freshtrack_sampling::{AlwaysSampler, BernoulliSampler, NeverSampler};
    use freshtrack_trace::TraceBuilder;

    #[test]
    fn matches_algorithm2_reports_on_contended_trace() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        let l = b.lock("l");
        b.acquire(0, l).write(0, x).release(0, l);
        b.write(1, y);
        b.acquire(1, l).write(1, x).release(1, l);
        b.write(0, y); // races with T1's write to y
        let trace = b.build();
        let reference = NaiveSamplingDetector::new(AlwaysSampler::new()).run(&trace);
        let su = FreshnessDetector::new(AlwaysSampler::new()).run(&trace);
        assert_eq!(reference, su);
        assert_eq!(su.len(), 1);
    }

    #[test]
    fn matches_algorithm2_under_partial_sampling() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let l = b.lock("l");
        for round in 0..50u32 {
            let t = round % 3;
            b.acquire(t, l).write(t, x).release(t, l);
            b.write(t, x);
        }
        b.write(3, x);
        let trace = b.build();
        for seed in 0..5 {
            let sampler = BernoulliSampler::new(0.3, seed);
            let reference = NaiveSamplingDetector::new(sampler).run(&trace);
            let su = FreshnessDetector::new(sampler).run(&trace);
            assert_eq!(reference, su, "seed {seed}");
        }
    }

    #[test]
    fn fig2_skips_redundant_acquires() {
        // The Fig. 1 execution again; Fig. 2 shows e12 and e14 (the
        // acquires of ℓ2 and ℓ3 by t2) being skipped, while e8 and e18
        // perform joins.
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let l1 = b.lock("l1");
        let l2 = b.lock("l2");
        let l3 = b.lock("l3");
        let l4 = b.lock("l4");
        b.acquire(0, l4)
            .acquire(0, l3)
            .acquire(0, l2)
            .acquire(0, l1);
        b.write(0, x); // e5, sampled
        b.release(0, l1);
        b.write(0, x); // e7, not sampled
        b.acquire(1, l1); // e8: join
        b.write(1, x); // e9, not sampled
        b.release(0, l2);
        b.write(0, x); // e11, not sampled
        b.acquire(1, l2); // e12: skipped
        b.release(0, l3);
        b.acquire(1, l3); // e14: skipped
        b.write(0, x); // e15, sampled
        b.write(0, x); // e16, sampled
        b.release(0, l4);
        b.acquire(1, l4); // e18: join
        let trace = b.build();

        #[derive(Clone)]
        struct MarkSampler;
        impl Sampler for MarkSampler {
            fn decide(&self, id: EventId, _event: Event) -> bool {
                matches!(id.index(), 4 | 14 | 15)
            }
            fn nominal_rate(&self) -> f64 {
                f64::NAN
            }
        }

        let mut su = FreshnessDetector::new(MarkSampler);
        su.run(&trace);
        let c = su.counters();
        // t1's four initial acquires of never-released locks are skipped
        // trivially; of t2's four acquires, e12 and e14 are skipped.
        assert_eq!(c.acquires, 8);
        assert_eq!(c.acquires_skipped, 6);
        assert_eq!(c.acquires_processed, 2);
    }

    #[test]
    fn releases_with_no_news_are_skipped() {
        let mut b = TraceBuilder::new();
        let l = b.lock("l");
        // The same thread re-releasing without learning anything new
        // must not copy again.
        b.acquire(0, l).release(0, l);
        b.acquire(0, l).release(0, l);
        b.acquire(0, l).release(0, l);
        let mut su = FreshnessDetector::new(NeverSampler::new());
        su.run(&b.build());
        let c = su.counters();
        assert_eq!(c.releases, 3);
        // With S = ∅, U_t(t) = Uℓ(t) = 0 throughout: every copy skipped.
        assert_eq!(c.releases_processed, 0);
        assert_eq!(c.releases_skipped, 3);
    }

    #[test]
    fn empty_sample_set_skips_everything_after_warmup() {
        let mut b = TraceBuilder::new();
        let l = b.lock("l");
        let m = b.lock("m");
        for _ in 0..10 {
            b.acquire(0, l).acquire(0, m).release(0, m).release(0, l);
            b.acquire(1, l).acquire(1, m).release(1, m).release(1, l);
        }
        let mut su = FreshnessDetector::new(NeverSampler::new());
        su.run(&b.build());
        let c = su.counters();
        assert_eq!(c.acquires_processed, 0);
        assert_eq!(c.releases_processed, 0);
    }
}
