use std::fmt;

use freshtrack_clock::ThreadId;
use freshtrack_trace::{EventId, VarId};

/// Whether the racing event was a read or a write.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessKind {
    /// The event is a read access.
    Read,
    /// The event is a write access.
    Write,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => write!(f, "read"),
            AccessKind::Write => write!(f, "write"),
        }
    }
}

/// A race declared by a detector at a specific access event.
///
/// Detectors report the *current* event of the race pair (the paper's
/// `e₂`); the conflicting earlier event(s) are summarized by which access
/// history check failed. Engines that are exact for the same sample set
/// produce identical report sequences, which the test suite relies on.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct RaceReport {
    /// Trace position of the racing access.
    pub event: EventId,
    /// Thread performing the racing access.
    pub tid: ThreadId,
    /// The contended memory location.
    pub var: VarId,
    /// Whether the racing access is a read or a write.
    pub access: AccessKind,
    /// `true` if the access is unordered with an earlier *write* in the
    /// access history.
    pub with_write: bool,
    /// `true` if the access is a write unordered with an earlier *read*
    /// in the access history.
    pub with_read: bool,
}

impl RaceReport {
    /// Creates a report; at least one of `with_write`/`with_read` should
    /// be set.
    pub fn new(
        event: EventId,
        tid: ThreadId,
        var: VarId,
        access: AccessKind,
        with_write: bool,
        with_read: bool,
    ) -> Self {
        debug_assert!(with_write || with_read, "race report with no conflict");
        RaceReport {
            event,
            tid,
            var,
            access,
            with_write,
            with_read,
        }
    }
}

impl fmt::Display for RaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let vs = match (self.with_write, self.with_read) {
            (true, true) => "earlier write and read",
            (true, false) => "earlier write",
            (false, true) => "earlier read",
            (false, false) => "nothing (?)",
        };
        write!(
            f,
            "race at {}: {} {} of {} conflicts with {vs}",
            self.event, self.tid, self.access, self.var
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_conflict() {
        let r = RaceReport::new(
            EventId::new(9),
            ThreadId::new(1),
            VarId::new(2),
            AccessKind::Write,
            true,
            false,
        );
        let s = r.to_string();
        assert!(s.contains("e9"));
        assert!(s.contains("T1"));
        assert!(s.contains("x2"));
        assert!(s.contains("earlier write"));
    }
}
