//! The sync/access seam: traits that split a streaming detector into a
//! **sync plane** (thread/lock clock state, held exactly once) and an
//! **access plane** (per-variable access histories, shardable).
//!
//! The monolithic [`Detector`](crate::Detector) event loop interleaves
//! two kinds of work with very different sharing requirements:
//!
//! * **Synchronization handling** (acquire/release) reads and writes
//!   *thread and lock clocks* — state that is global by nature: every
//!   thread's clock can be affected by every lock.
//! * **Access handling** (read/write) reads the accessing thread's
//!   clock and reads/writes the *per-variable access history* — state
//!   that partitions perfectly by variable.
//!
//! PR 3's replicated sharding ignored this asymmetry and cloned the
//! sync state into every shard, so each sync event paid `N×` clock work
//! plus `N` lock acquisitions. The traits here encode the seam instead
//! (the TSan architecture: one timestamp authority, per-location shadow
//! state):
//!
//! * [`SyncEngine`] — owns every thread/lock clock once, processes
//!   acquire/release events, and *publishes* a cheap per-thread
//!   [`ClockView`] after each one.
//! * [`AccessEngine`] — owns only access histories (and the sampler),
//!   and analyzes access events against a published view of the
//!   accessing thread's clock.
//! * [`SplitDetector`] — implemented by engines that can be split into
//!   the two halves; the monolithic `Detector` impl of each engine is
//!   itself a composition of the same halves, so the split cannot drift
//!   from the reference semantics.
//!
//! # Why verdicts are preserved
//!
//! The race verdict of an access by thread `t` depends only on (a) `t`'s
//! clock — which changes *only at `t`'s own sync events*, because joins
//! happen at acquires and increments at releases — and (b) the access
//! history of the variable. A view published at `t`'s latest sync event
//! is therefore exactly the clock a monolithic detector would consult,
//! and the history lives wholly inside one access shard. The sampling
//! decision depends only on `(seed, EventId)` (invariant 4 in
//! `ARCHITECTURE.md`), so the sample set is unchanged too.
//!
//! The only information that flows *back* across the seam is the
//! `RelAfter_S` bit of Algorithms 2–4 — "has this thread sampled an
//! access since its last release?" — reported by
//! [`AccessOutcome::sampled`] and consumed by
//! [`SyncEngine::release`]. The two-plane façade carries it as one
//! atomic flag per thread; monolithic detectors carry it as a plain
//! per-thread bool.

use freshtrack_clock::{ClockSnapshot, ThreadId, Time, VectorClock, VectorClockSnapshot};
use freshtrack_sampling::Sampler;
use freshtrack_trace::{Event, EventId, EventKind, LockId};

use crate::{AccessKind, Counters, Detector, RaceReport};

/// A read-only view of the accessing thread's clock, as consulted by
/// race checks — `C_t` with the authoritative own-component spliced in
/// (`C_t[t ↦ e_t]` for the epoch-keeping engines).
pub trait ClockView {
    /// The clock entry for thread `u`, including the own-thread splice.
    fn time_of(&self, u: ThreadId) -> Time;

    /// An upper bound on the clock's allocated width, used to size
    /// access-history materialization. Entries at or beyond this index
    /// read as `0` (other than the own-thread splice, which callers
    /// cover separately via the accessor's id).
    fn width(&self) -> usize;
}

/// The outcome of analyzing one access event on the access plane.
#[derive(Debug, Default)]
pub struct AccessOutcome {
    /// Whether the sampler admitted the access into `S` — the
    /// `RelAfter_S` feedback bit the sync plane consumes at the
    /// thread's next release.
    pub sampled: bool,
    /// The race report, if the access races.
    pub report: Option<RaceReport>,
}

impl AccessOutcome {
    /// An access that was not sampled (and therefore cannot race).
    pub fn skipped() -> Self {
        AccessOutcome::default()
    }

    /// A sampled access with an optional race report.
    pub fn sampled(report: Option<RaceReport>) -> Self {
        AccessOutcome {
            sampled: true,
            report,
        }
    }
}

/// The sync-plane half of a split engine: every thread and lock clock,
/// held exactly once.
///
/// Implementations mutate clock state at acquire/release events and
/// account the work in the caller-supplied [`Counters`] (the same
/// fields the monolithic engine would touch, so merged counters stay
/// comparable).
pub trait SyncEngine: Send {
    /// The per-thread clock view published to the access plane. Must be
    /// `O(1)` to produce and pointer-sized to clone — see
    /// [`publish`](SyncEngine::publish).
    type View: ClockView + Clone + Send + 'static;

    /// Makes thread `tid` (and every lower id) exist with its initial
    /// clock state.
    fn ensure_thread(&mut self, tid: ThreadId);

    /// Handles an acquire of `lock` by `tid` (`C_t ← C_t ⊔ Cℓ`).
    fn acquire(&mut self, tid: ThreadId, lock: LockId, counters: &mut Counters);

    /// Handles a release of `lock` by `tid`. `sampled_since_release` is
    /// the `RelAfter_S` bit: whether `tid` sampled an access since its
    /// previous release (epoch-keeping engines flush and advance the
    /// local epoch only then).
    fn release(
        &mut self,
        tid: ThreadId,
        lock: LockId,
        sampled_since_release: bool,
        counters: &mut Counters,
    );

    /// Publishes the current view of `tid`'s clock.
    ///
    /// `O(1)`: the clock moves behind a shared reference
    /// ([`SharedClock::snapshot`](freshtrack_clock::SharedClock::snapshot)
    /// /
    /// [`SharedVectorClock::snapshot`](freshtrack_clock::SharedVectorClock::snapshot)),
    /// not copied. Callers that later mutate `tid`'s state should drop
    /// the previously published view *first* (take-before-mutate), so
    /// the publication never forces a lazy deep copy beyond the ones
    /// the engine's own lock aliases would cause.
    fn publish(&mut self, tid: ThreadId) -> Self::View;

    /// Writes thread `tid`'s spliced race-check clock (`C_t[t ↦ e_t]`)
    /// densely into `out` (cleared first), entry `u` at index `u`, at
    /// least `tid.index() + 1` entries wide.
    ///
    /// `width_cap` is a caller-supplied promise that every entry of the
    /// spliced clock at index `>= width_cap` is zero (pass `usize::MAX`
    /// when no such promise can be made), so the engine may stop
    /// linearizing there instead of walking a wide reservation's idle
    /// tail. The sharded detector derives the cap from the highest
    /// thread id that has had a sync event: epochs only circulate
    /// through releases, which are themselves sync events serialized by
    /// the same lock, so no entry above that id can be non-zero.
    ///
    /// This is the seqlock publication fast path: the engines override
    /// it with a straight memcpy from their contiguous clock storage,
    /// which beats linearizing [`publish`](SyncEngine::publish)'s view
    /// through a per-entry `time_of` walk by an order of magnitude at
    /// realistic clock widths. The default does exactly that walk, so
    /// the two paths are interchangeable (pinned by a differential test
    /// in `sharding.rs`).
    fn publish_dense(&mut self, tid: ThreadId, width_cap: usize, out: &mut Vec<Time>) {
        let view = self.publish(tid);
        let width = view.width().min(width_cap).max(tid.index() + 1);
        out.clear();
        out.extend((0..width).map(|u| view.time_of(ThreadId::new(u as u32))));
    }

    /// Borrows thread `tid`'s dense spliced clock directly from engine
    /// storage, when the engine can expose it without materializing
    /// anything — i.e. when `C_t[t] = e_t` already holds in memory, as
    /// it does in a raw vector clock. Must equal what
    /// [`publish_dense`](SyncEngine::publish_dense) would write for the
    /// same `(tid, width_cap)` (same cap contract); engines whose
    /// published view splices a lazily-kept epoch return `None` (the
    /// default) and the caller falls back to the materializing path.
    fn publish_dense_ref(&self, _tid: ThreadId, _width_cap: usize) -> Option<&[Time]> {
        None
    }

    /// Pre-sizes per-thread clock state for `n` threads.
    fn reserve_threads(&mut self, n: usize);
}

/// Source of per-thread clock views consumed during a batched flush:
/// `view(tid)` yields the accessing thread's *current* published view.
///
/// The lifetime-carrying associated type lets a source hand out views
/// borrowed from its own scratch buffer (the seqlock path decodes each
/// snapshot into one reusable `Vec<Time>`), while sources that publish
/// owned pointer-sized snapshots return them by value.
pub trait ViewSource {
    /// The view produced for one event (may borrow from `self`).
    type View<'a>: ClockView
    where
        Self: 'a;

    /// The current published view of thread `tid`'s clock.
    fn view(&mut self, tid: ThreadId) -> Self::View<'_>;
}

/// The access-plane half of a split engine: the sampler plus access
/// histories for the shard's slice of the variable space.
///
/// `access` is generic over the [`ClockView`] it consults — the race
/// check only ever *reads* the view through `time_of`/`width`, so one
/// access engine serves every sync engine's published representation
/// (owned snapshot, epoch-spliced snapshot, or a borrowed slice decoded
/// from a seqlock publication).
pub trait AccessEngine: Send {
    /// The hoisted sampling decision: whether the access `event` at
    /// position `id` belongs to the sample set. Pure in `(id, event)`
    /// and callable without any lock — this is the method the lock-free
    /// skip path consults before touching any shared state (invariant
    /// 10 in `ARCHITECTURE.md`). Must agree with the decision
    /// [`access`](AccessEngine::access) would make for the same inputs.
    fn decide(&self, id: EventId, event: Event) -> bool;

    /// Analyzes one access event (`event.kind` is `Read` or `Write`)
    /// **already admitted into the sample set** by
    /// [`decide`](AccessEngine::decide), against this shard's
    /// histories, using the accessing thread's published clock view.
    /// Counts reads/writes/samples/races into `counters`.
    fn access_sampled<W: ClockView>(
        &mut self,
        id: EventId,
        event: Event,
        view: &W,
        counters: &mut Counters,
    ) -> AccessOutcome;

    /// Analyzes one access event inline: decides membership, tallies
    /// the skip, or runs the full sampled analysis. Equivalent to the
    /// hoisted split (`decide` + skip tally / `access_sampled`), which
    /// the online façades use instead so skipped accesses never reach
    /// the engine at all.
    fn access<W: ClockView>(
        &mut self,
        id: EventId,
        event: Event,
        view: &W,
        counters: &mut Counters,
    ) -> AccessOutcome {
        if !self.decide(id, event) {
            tally_access(&event, counters);
            return AccessOutcome::skipped();
        }
        self.access_sampled(id, event, view, counters)
    }

    /// Analyzes a batch of buffered access events in order under a
    /// single shard-lock acquisition, resolving each event's view
    /// through `views` at flush time and reporting each outcome through
    /// `sink`. Batches contain only **sampled** events: the hoisted
    /// decision rejects skipped accesses before they are ever buffered.
    ///
    /// Resolving views at flush time is correct because a thread's view
    /// changes only at its own sync events, and the sharded façade
    /// flushes every batch *before* processing any sync event — so the
    /// view observed here equals the view at ticket-draw time.
    fn feed_batch<V: ViewSource>(
        &mut self,
        events: &[(EventId, Event)],
        views: &mut V,
        counters: &mut Counters,
        mut sink: impl FnMut(Event, AccessOutcome),
    ) {
        for &(id, event) in events {
            let view = views.view(event.tid);
            let outcome = self.access_sampled(id, event, &view, counters);
            sink(event, outcome);
        }
    }
}

/// Tallies one access event's read/write counter — the only counter
/// work a sampled-out access performs.
#[inline]
pub(crate) fn tally_access(event: &Event, counters: &mut Counters) {
    match event.kind {
        EventKind::Read(_) => counters.reads += 1,
        EventKind::Write(_) => counters.writes += 1,
        EventKind::Acquire(_) | EventKind::Release(_) => {
            unreachable!("sync events belong to the sync plane")
        }
    }
}

/// An engine that can be split along the sync/access seam into one
/// [`SyncEngine`] plus any number of [`AccessEngine`] shards.
///
/// `split_sync` / `split_access` derive *fresh* halves from this
/// detector's configuration (engine options, sampler seed); the
/// detector itself must be in its initial state, exactly like the
/// pristine-clone requirement of replicated sharding. All access shards
/// of one run must come from the same detector so their samplers agree.
pub trait SplitDetector: Detector + Clone + Send {
    /// The sync-plane half.
    type Sync: SyncEngine<View = Self::View>;
    /// The access-plane half (view-agnostic; see [`AccessEngine`]).
    type Access: AccessEngine;
    /// The published per-thread clock view.
    type View: ClockView + Clone + Send + 'static;

    /// Builds the sync engine (fresh state, this detector's config).
    fn split_sync(&self) -> Self::Sync;

    /// Builds one access shard (fresh state, this detector's config).
    fn split_access(&self) -> Self::Access;
}

// ---------------------------------------------------------------------
// View implementations shared by the engines.
// ---------------------------------------------------------------------

/// Published view for engines whose race checks read the raw thread
/// clock (Djit+, FastTrack): a pointer-sized vector-clock snapshot.
impl ClockView for VectorClockSnapshot {
    #[inline]
    fn time_of(&self, u: ThreadId) -> Time {
        self.get(u)
    }

    #[inline]
    fn width(&self) -> usize {
        self.len()
    }
}

/// Published view for the epoch-keeping engines (SU, SO): the snapshot
/// of the communicated clock plus the local epoch spliced in at the
/// owner's own entry (`C_t[t ↦ e_t]`, the race-check view of
/// Algorithms 2–4).
#[derive(Clone, Debug)]
pub struct EpochView<Snap> {
    /// Snapshot of the communicated clock `C_t` / `O_t`.
    pub snap: Snap,
    /// The local epoch `e_t`.
    pub epoch: Time,
    /// The owning thread.
    pub tid: ThreadId,
}

impl ClockView for EpochView<ClockSnapshot> {
    #[inline]
    fn time_of(&self, u: ThreadId) -> Time {
        if u == self.tid {
            self.epoch
        } else {
            self.snap.get(u)
        }
    }

    #[inline]
    fn width(&self) -> usize {
        self.snap.list().len()
    }
}

impl ClockView for EpochView<VectorClockSnapshot> {
    #[inline]
    fn time_of(&self, u: ThreadId) -> Time {
        if u == self.tid {
            self.epoch
        } else {
            self.snap.get(u)
        }
    }

    #[inline]
    fn width(&self) -> usize {
        self.snap.len()
    }
}

/// Monolith-side borrowed view over a raw clock lookup closure: the
/// composed detectors consult their own sync half directly, without the
/// `O(1)` publication machinery (no other plane exists in-process).
pub(crate) struct BorrowedView<F> {
    pub(crate) lookup: F,
    pub(crate) width: usize,
}

impl<F: Fn(ThreadId) -> Time> ClockView for BorrowedView<F> {
    #[inline]
    fn time_of(&self, u: ThreadId) -> Time {
        (self.lookup)(u)
    }

    #[inline]
    fn width(&self) -> usize {
        self.width
    }
}

/// A clock view decoded from a seqlock publication
/// ([`PublishedClock`](freshtrack_clock::PublishedClock)): a borrowed
/// slice of times, entry `u` at index `u`, missing entries `0`.
///
/// The writer publishes the already-spliced race-check view
/// (`C_t[t ↦ e_t]`), so one flat representation serves every engine;
/// readers decode a snapshot into a reusable scratch buffer and wrap it
/// in this type for the duration of one race check. Trailing zero
/// entries are harmless: `0 ⊑` anything, so verdicts and counters are
/// unaffected by the width a publication happened to have.
#[derive(Clone, Copy, Debug)]
pub struct PublishedView<'a> {
    entries: &'a [Time],
}

impl<'a> PublishedView<'a> {
    /// Wraps a decoded snapshot slice.
    pub fn new(entries: &'a [Time]) -> Self {
        PublishedView { entries }
    }
}

impl ClockView for PublishedView<'_> {
    #[inline]
    fn time_of(&self, u: ThreadId) -> Time {
        self.entries.get(u.index()).copied().unwrap_or(0)
    }

    #[inline]
    fn width(&self) -> usize {
        self.entries.len()
    }
}

/// The trivial view of state-free engines
/// ([`EmptyDetector`](crate::EmptyDetector)).
impl ClockView for () {
    #[inline]
    fn time_of(&self, _u: ThreadId) -> Time {
        0
    }

    #[inline]
    fn width(&self) -> usize {
        0
    }
}

/// `history ⊑ view`, entry-wise — the shared comparison access engines
/// use against their recorded histories.
#[inline]
pub(crate) fn history_leq_view<V: ClockView>(history: &VectorClock, view: &V) -> bool {
    history.iter().all(|(u, time)| time <= view.time_of(u))
}

// ---------------------------------------------------------------------
// The shared access engine of the vector-clock-history engines.
// ---------------------------------------------------------------------

/// The access-plane half shared by every engine whose per-variable
/// histories are full clocks ([`AccessHistories`](crate::AccessHistories)):
/// Djit+ (ST), SU and SO. The engines differ only in their *sync*
/// handlers and in the view they publish (raw clock vs epoch-spliced),
/// which is exactly the seam this type sits on: it is generic over the
/// view and knows nothing about synchronization.
///
/// `WIDTH` bookkeeping: history materialization
/// ([`AccessHistories::record_write`](crate::AccessHistories::record_write))
/// must overwrite every entry a previous record could have set. A
/// monolithic detector passes its global thread count; a shard cannot
/// see that, so it tracks the running maximum of every accessor id and
/// view width it has observed — an upper bound on every non-zero entry
/// its own histories can contain, which is all that overwriting needs
/// (larger widths only write more zeros, and a missing entry reads as
/// zero).
pub struct HistoryAccessEngine<S> {
    sampler: S,
    history: crate::AccessHistories,
    width: usize,
}

impl<S: Sampler> HistoryAccessEngine<S> {
    /// Creates an empty access engine around `sampler`.
    pub fn new(sampler: S) -> Self {
        HistoryAccessEngine {
            sampler,
            history: crate::AccessHistories::new(),
            width: 0,
        }
    }

    /// The configured sampler (cloned out for hoisted deciders).
    pub(crate) fn sampler(&self) -> &S {
        &self.sampler
    }

    /// Analyzes one access event **already admitted into `S`** against
    /// any clock view (the monolithic detectors call this with a
    /// borrowed view of their own sync half after their own hoisted
    /// decision; the trait impl routes the published view type through
    /// it).
    ///
    /// The width bookkeeping lives here — on the sampled path only — so
    /// a skipped access mutates nothing at all: non-zero history
    /// entries are only ever recorded by sampled accesses, whose ids
    /// and views this running maximum does observe.
    pub(crate) fn access_sampled_with<W: ClockView>(
        &mut self,
        id: EventId,
        event: Event,
        view: &W,
        counters: &mut Counters,
    ) -> AccessOutcome {
        let tid = event.tid;
        self.width = self.width.max(tid.index() + 1).max(view.width());
        counters.sampled_accesses += 1;
        counters.race_checks += 1;
        match event.kind {
            EventKind::Read(var) => {
                counters.reads += 1;
                let races = self.history.read_races(var, |u| view.time_of(u));
                self.history.record_read(var, tid, view.time_of(tid));
                AccessOutcome::sampled(races.then(|| {
                    counters.races += 1;
                    RaceReport::new(id, tid, var, AccessKind::Read, true, false)
                }))
            }
            EventKind::Write(var) => {
                counters.writes += 1;
                let (with_write, with_read) = self.history.write_races(var, |u| view.time_of(u));
                self.history
                    .record_write(var, self.width, |u| view.time_of(u));
                AccessOutcome::sampled((with_write || with_read).then(|| {
                    counters.races += 1;
                    RaceReport::new(id, tid, var, AccessKind::Write, with_write, with_read)
                }))
            }
            EventKind::Acquire(_) | EventKind::Release(_) => {
                unreachable!("sync events belong to the sync plane")
            }
        }
    }
}

impl<S: Sampler + Send> AccessEngine for HistoryAccessEngine<S> {
    fn decide(&self, id: EventId, event: Event) -> bool {
        self.sampler.decide(id, event)
    }

    fn access_sampled<W: ClockView>(
        &mut self,
        id: EventId,
        event: Event,
        view: &W,
        counters: &mut Counters,
    ) -> AccessOutcome {
        self.access_sampled_with(id, event, view, counters)
    }
}

impl<S> crate::checkpoint::CheckpointState for HistoryAccessEngine<S> {
    fn export_state(&self, out: &mut Vec<u8>) {
        freshtrack_clock::wire::put_varint(out, self.width as u64);
        self.history.export_wire(out);
    }

    fn import_state(&mut self, bytes: &[u8]) -> Result<(), crate::checkpoint::CheckpointError> {
        let mut r = freshtrack_clock::wire::WireReader::new(bytes);
        let width = r.get_usize()?;
        let history = crate::AccessHistories::import_wire(&mut r)?;
        r.finish()?;
        self.width = width;
        self.history = history;
        Ok(())
    }
}

impl<S: Clone> Clone for HistoryAccessEngine<S> {
    fn clone(&self) -> Self {
        HistoryAccessEngine {
            sampler: self.sampler.clone(),
            history: self.history.clone(),
            width: self.width,
        }
    }
}

impl<S: std::fmt::Debug> std::fmt::Debug for HistoryAccessEngine<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistoryAccessEngine")
            .field("sampler", &self.sampler)
            .field("width", &self.width)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_view_splices_own_entry() {
        let mut clock = freshtrack_clock::SharedVectorClock::new();
        clock.make_mut().0.set(ThreadId::new(1), 7);
        let view = EpochView {
            snap: clock.snapshot(),
            epoch: 42,
            tid: ThreadId::new(0),
        };
        assert_eq!(view.time_of(ThreadId::new(0)), 42);
        assert_eq!(view.time_of(ThreadId::new(1)), 7);
        assert_eq!(view.width(), 2);
    }

    #[test]
    fn borrowed_view_delegates_to_lookup() {
        let view = BorrowedView {
            lookup: |u: ThreadId| u.index() as Time * 10,
            width: 3,
        };
        assert_eq!(view.time_of(ThreadId::new(2)), 20);
        assert_eq!(view.width(), 3);
    }

    #[test]
    fn history_leq_matches_pointwise_comparison() {
        let history = VectorClock::from_iter([(ThreadId::new(0), 2), (ThreadId::new(1), 5)]);
        let le = BorrowedView {
            lookup: |_| 5,
            width: 2,
        };
        let lt = BorrowedView {
            lookup: |_| 4,
            width: 2,
        };
        assert!(history_leq_view(&history, &le));
        assert!(!history_leq_view(&history, &lt));
    }
}
