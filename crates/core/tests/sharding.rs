//! Sharded-ingestion differential suite: the executable form of the
//! verdict-preservation invariant, for **every** sync-skeleton
//! construction and batch capacity.
//!
//! [`ShardedOnlineDetector`] routes access events to `hash(var) % N`
//! shards; the happens-before skeleton is either *replicated* into
//! per-shard detector clones ([`SyncMode::Replicated`], PR 3) or held
//! once by a shared sync engine behind a sync-only lock, publishing
//! views through per-thread mutex slots ([`SyncMode::Shared`], PR 4) or
//! through lock-free seqlock slots ([`SyncMode::Seqlock`], the
//! default). All claim the merged result is indistinguishable from the
//! single-mutex
//! [`OnlineDetector`]: identical (EventId-sorted) race reports and
//! identical per-kind counters. This suite checks that claim for
//!
//! * **shard counts** `N ∈ {1, 2, 4, 7}` (including a prime, so routing
//!   has no accidental alignment with the variable-id space),
//! * **sync modes** — replicated, mutex-slot two-plane, and seqlock,
//!   pinned against one baseline (and therefore against each other),
//! * **batch capacities** `B ∈ {1, 7, 64}` — buffered ingestion
//!   (`with_options`) vs unbatched, same reports and counters,
//! * **engines** Djit+ (ST), FastTrack, and the ordered-list engine
//!   (SO) — per-variable vector-clock, lossy-epoch, and lazy-copy
//!   histories respectively,
//! * **sampler families** — always, Bernoulli, periodic, never,
//!
//! over fuzzed traces (proptest; scale with `PROPTEST_CASES` — CI runs
//! a hardened pass) and the 6 structured workload patterns × 3 seeds.
//!
//! It also pins the **report-order invariant** the shard merge depends
//! on — [`Detector::run`], [`OnlineDetector::finish`] *and*
//! [`ShardedOnlineDetector::finish_merged`] at `N > 1` yield reports
//! strictly sorted by racing [`EventId`] — and the **order
//! independence of [`Counters::merge`]** across shard permutations
//! (the sync-once/work-summed asymmetry must not depend on which shard
//! happens to come first).
//!
//! [`EventId`]: freshtrack_trace::EventId
//! [`OnlineDetector`]: freshtrack_core::OnlineDetector
//! [`OnlineDetector::finish`]: freshtrack_core::OnlineDetector::finish
//! [`ShardedOnlineDetector`]: freshtrack_core::ShardedOnlineDetector
//! [`ShardedOnlineDetector::finish_merged`]: freshtrack_core::ShardedOnlineDetector::finish_merged
//! [`Counters::merge`]: freshtrack_core::Counters::merge

use freshtrack_core::{
    Counters, Detector, DjitDetector, FastTrackDetector, OnlineDetector, OrderedListDetector,
    RaceReport, ShardedOnlineDetector, SyncMode,
};
use freshtrack_sampling::{AlwaysSampler, BernoulliSampler, NeverSampler, PeriodicSampler};
use freshtrack_testutil::{
    assert_shard_equivalence, run_sharded_trace, run_sharded_trace_batched, trace_from_fuel,
    workload_matrix,
};
use freshtrack_trace::Trace;
use proptest::prelude::*;

/// Shard counts under test: identity, powers of two, and a prime.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];

/// Every sync-skeleton construction.
const ALL_MODES: [SyncMode; 3] = [SyncMode::Replicated, SyncMode::Shared, SyncMode::Seqlock];

/// Batch capacities for the batched-vs-unbatched differential: the
/// unbatched reference, a capacity that forces mid-stream flushes, and
/// one that usually defers everything to the next sync event / finish.
const BATCH_SIZES: [usize; 3] = [1, 7, 64];

/// Seeds for the structured workload matrix.
const SEEDS: [u64; 3] = [11, 4242, 987_654_321];

/// Structured-cell trace size. No quadratic oracle runs here, so cells
/// can be bigger than the conformance suite's.
const EVENTS: usize = 600;

/// Runs the shard-equivalence contract (every sync mode vs the
/// single-mutex baseline) for all three engines over one
/// `(trace, sampler)` cell.
fn check_all_engines<S: freshtrack_sampling::Sampler + Copy + Send>(
    label: &str,
    trace: &Trace,
    s: S,
) {
    assert_shard_equivalence(
        &format!("{label}/djit"),
        trace,
        DjitDetector::new(s),
        &SHARD_COUNTS,
    );
    assert_shard_equivalence(
        &format!("{label}/fasttrack"),
        trace,
        FastTrackDetector::new(s),
        &SHARD_COUNTS,
    );
    assert_shard_equivalence(
        &format!("{label}/so"),
        trace,
        OrderedListDetector::new(s),
        &SHARD_COUNTS,
    );
}

#[test]
fn structured_patterns_at_full_sampling() {
    let mut racy_cells = 0usize;
    for (label, trace) in workload_matrix(EVENTS, &SEEDS) {
        let reports = assert_shard_equivalence(
            &format!("{label}/djit"),
            &trace,
            DjitDetector::new(AlwaysSampler::new()),
            &SHARD_COUNTS,
        );
        racy_cells += usize::from(!reports.is_empty());
        assert_shard_equivalence(
            &format!("{label}/fasttrack"),
            &trace,
            FastTrackDetector::new(AlwaysSampler::new()),
            &SHARD_COUNTS,
        );
        assert_shard_equivalence(
            &format!("{label}/so"),
            &trace,
            OrderedListDetector::new(AlwaysSampler::new()),
            &SHARD_COUNTS,
        );
    }
    // Equivalence on raceless cells is a weak check; the generator
    // seeds unprotected accesses, so most cells must be racy.
    assert!(
        racy_cells >= 6,
        "only {racy_cells} racy cells in the shard-equivalence matrix"
    );
}

#[test]
fn structured_patterns_under_bernoulli_sampling() {
    for &rate in &[0.03f64, 0.3] {
        for (label, trace) in workload_matrix(EVENTS, &SEEDS) {
            let seed = label.bytes().fold(0x5ead_beefu64, |h, b| {
                (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
            }) ^ rate.to_bits();
            check_all_engines(
                &format!("{label}@bernoulli-{rate}"),
                &trace,
                BernoulliSampler::new(rate, seed),
            );
        }
    }
}

#[test]
fn structured_patterns_under_periodic_and_never_sampling() {
    for (label, trace) in workload_matrix(EVENTS, &SEEDS) {
        check_all_engines(
            &format!("{label}@periodic-16"),
            &trace,
            PeriodicSampler::new(0.3, 16, 5),
        );
        let reports = assert_shard_equivalence(
            &format!("{label}@never/djit"),
            &trace,
            DjitDetector::new(NeverSampler::new()),
            &SHARD_COUNTS,
        );
        assert!(
            reports.is_empty(),
            "[{label}] empty sample set must stay silent"
        );
    }
}

/// The dedicated old-vs-new pin: for every engine, shard count and a
/// racy structured cell, the replicated, mutex-slot, and seqlock runs
/// produce *identical* verdicts (reports compared against each other
/// directly, not just against the single-mutex baseline).
#[test]
fn replicated_and_two_plane_verdicts_are_identical() {
    let sampler = BernoulliSampler::new(0.4, 2024);
    for (label, trace) in workload_matrix(EVENTS, &[11]) {
        for shards in SHARD_COUNTS {
            let (old_reports, old_counters) = run_sharded_trace(
                &trace,
                DjitDetector::new(sampler),
                shards,
                SyncMode::Replicated,
            );
            for mode in [SyncMode::Shared, SyncMode::Seqlock] {
                let (new_reports, new_counters) =
                    run_sharded_trace(&trace, DjitDetector::new(sampler), shards, mode);
                assert_eq!(
                    old_reports, new_reports,
                    "[{label}] djit N={shards} {mode:?}"
                );
                assert_eq!(
                    old_counters.races, new_counters.races,
                    "[{label}] N={shards} {mode:?}"
                );
                assert_eq!(
                    old_counters.sampled_accesses, new_counters.sampled_accesses,
                    "[{label}] N={shards} {mode:?}"
                );
            }

            let (old_reports, _) = run_sharded_trace(
                &trace,
                OrderedListDetector::new(sampler),
                shards,
                SyncMode::Replicated,
            );
            for mode in [SyncMode::Shared, SyncMode::Seqlock] {
                let (new_reports, _) =
                    run_sharded_trace(&trace, OrderedListDetector::new(sampler), shards, mode);
                assert_eq!(old_reports, new_reports, "[{label}] so N={shards} {mode:?}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Fuzzed traces: every engine, every shard count, both sync
    /// modes, Bernoulli sampling with arbitrary seed and rate.
    #[test]
    fn fuzzed_traces_shard_equivalence(
        fuel in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..150),
        seed in any::<u64>(),
        rate in 0.05f64..1.0,
    ) {
        let trace = trace_from_fuel(&fuel, 5, 3, 4);
        prop_assume!(trace.validate().is_ok());
        check_all_engines("fuzz", &trace, BernoulliSampler::new(rate, seed));
    }

    /// Fuzzed traces at full sampling with more threads than shards in
    /// some configurations (8 threads vs N ∈ {1,2,4,7}).
    #[test]
    fn fuzzed_wide_traces_shard_equivalence(
        fuel in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..200),
    ) {
        let trace = trace_from_fuel(&fuel, 8, 4, 6);
        prop_assume!(trace.validate().is_ok());
        check_all_engines("fuzz-wide", &trace, AlwaysSampler::new());
    }

    /// Batched vs unbatched ingestion over fuzzed traces: for every
    /// engine, every sync mode and B ∈ {1, 7, 64}, buffering access
    /// events in per-shard batches changes neither the merged report
    /// list nor any `Counters` field — the flush-before-any-sync rule
    /// makes draw-time and flush-time views coincide, and ticket order
    /// restricted to a shard is preserved through the FIFO.
    #[test]
    fn fuzzed_traces_batched_matches_unbatched(
        fuel in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..150),
        seed in any::<u64>(),
        rate in 0.05f64..1.0,
        shards_idx in 0usize..SHARD_COUNTS.len(),
    ) {
        let shards = SHARD_COUNTS[shards_idx];
        let trace = trace_from_fuel(&fuel, 5, 3, 4);
        prop_assume!(trace.validate().is_ok());
        let samplers = (BernoulliSampler::new(rate, seed), AlwaysSampler::new());
        for mode in ALL_MODES {
            macro_rules! check_batched {
                ($label:expr, $mk:expr) => {{
                    let (base_reports, base_counters) =
                        run_sharded_trace_batched(&trace, $mk, shards, mode, 1);
                    for batch in &BATCH_SIZES[1..] {
                        let (reports, counters) =
                            run_sharded_trace_batched(&trace, $mk, shards, mode, *batch);
                        prop_assert_eq!(
                            &reports, &base_reports,
                            "[{}] {:?} N={} B={}", $label, mode, shards, batch
                        );
                        prop_assert_eq!(
                            counters, base_counters,
                            "[{}] {:?} N={} B={}", $label, mode, shards, batch
                        );
                    }
                }};
            }
            check_batched!("djit/bernoulli", DjitDetector::new(samplers.0));
            check_batched!("fasttrack/bernoulli", FastTrackDetector::new(samplers.0));
            check_batched!("so/bernoulli", OrderedListDetector::new(samplers.0));
            check_batched!("djit/always", DjitDetector::new(samplers.1));
            check_batched!("fasttrack/always", FastTrackDetector::new(samplers.1));
            check_batched!("so/always", OrderedListDetector::new(samplers.1));
        }
    }

    /// Report-order regression (the invariant the shard merge builds
    /// on): every engine's `run` yields reports strictly sorted by
    /// racing EventId, the single-mutex online façade preserves that
    /// through `finish`, and — the multi-shard cases —
    /// `ShardedOnlineDetector::finish_merged` preserves it at `N > 1`
    /// in both sync modes.
    #[test]
    fn reports_are_sorted_by_event_id(
        fuel in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..150),
    ) {
        fn assert_sorted(label: &str, reports: &[RaceReport]) {
            assert!(
                reports.windows(2).all(|w| w[0].event < w[1].event),
                "[{label}] reports out of EventId order: {reports:?}"
            );
        }
        let trace = trace_from_fuel(&fuel, 4, 3, 3);
        prop_assume!(trace.validate().is_ok());

        assert_sorted("djit", &DjitDetector::new(AlwaysSampler::new()).run(&trace));
        assert_sorted(
            "fasttrack",
            &FastTrackDetector::new(AlwaysSampler::new()).run(&trace),
        );
        assert_sorted("so", &OrderedListDetector::new(AlwaysSampler::new()).run(&trace));

        let baseline = DjitDetector::new(AlwaysSampler::new()).run(&trace);

        let online = OnlineDetector::new(DjitDetector::new(AlwaysSampler::new()));
        for (_, event) in trace.iter() {
            online.on_event(event.tid.as_u32(), event.kind);
        }
        let (_, reports) = online.finish();
        assert_sorted("online", &reports);
        assert_eq!(
            reports, baseline,
            "online façade must replay the trace verbatim"
        );

        // finish_merged at N > 1: the merge itself must restore strict
        // EventId order from the per-shard partitions, in both modes.
        for mode in ALL_MODES {
            for shards in [2usize, 4, 7] {
                let (reports, merged) = run_sharded_trace(
                    &trace,
                    DjitDetector::new(AlwaysSampler::new()),
                    shards,
                    mode,
                );
                assert_sorted(&format!("finish_merged/{mode:?}/{shards}"), &reports);
                assert_eq!(
                    reports, baseline,
                    "finish_merged({mode:?}, {shards}) must reproduce the baseline"
                );
                assert_eq!(reports.len() as u64, merged.races);
            }
        }
    }

    /// `Counters::merge` is order-independent across shard
    /// permutations: the sync-once/work-summed asymmetry documented in
    /// PR 3 must yield the same merged value no matter how the shards
    /// are ordered (rotations and reversals cover every adjacent
    /// transposition pattern the fold could be sensitive to).
    #[test]
    fn counters_merge_is_order_independent(
        // Per-shard access-side and work-side counts; sync observation
        // counts are shared (every shard sees every sync event).
        per_shard in prop::collection::vec(
            (0u64..1000, 0u64..1000, 0u64..1000, 0u64..1000, 0u64..1000),
            1..8,
        ),
        acquires in 0u64..500,
        releases in 0u64..500,
        rotation in any::<usize>(),
    ) {
        let shards: Vec<Counters> = per_shard
            .iter()
            .map(|&(reads, writes, vc_ops, traversed, deep)| Counters {
                reads,
                writes,
                sampled_accesses: reads / 2,
                races: writes / 10,
                acquires,
                releases,
                acquires_skipped: acquires / 2,
                acquires_processed: acquires - acquires / 2,
                vc_ops,
                entries_traversed: traversed,
                deep_copies: deep,
                events: reads + writes + acquires + releases,
                ..Counters::new()
            })
            .collect();

        let reference = Counters::merge(shards.clone());

        let mut rotated = shards.clone();
        rotated.rotate_left(rotation % shards.len());
        prop_assert_eq!(Counters::merge(rotated), reference);

        let mut reversed = shards;
        reversed.reverse();
        prop_assert_eq!(Counters::merge(reversed), reference);
    }
}

/// A deterministic non-proptest regression: the racy mixed pattern has
/// multiple reports, and the sharded merge keeps them sorted and equal
/// to the baseline for every shard count and both sync modes —
/// including through `finish_merged` at `N > 1`.
#[test]
fn regression_sorted_merge_on_racy_cell() {
    let (label, trace) = workload_matrix(EVENTS, &[11])
        .into_iter()
        .next()
        .expect("matrix is non-empty");
    let reports = assert_shard_equivalence(
        &label,
        &trace,
        DjitDetector::new(AlwaysSampler::new()),
        &SHARD_COUNTS,
    );
    assert!(reports.len() >= 2, "[{label}] want a multi-report cell");
    assert!(reports.windows(2).all(|w| w[0].event < w[1].event));

    for mode in ALL_MODES {
        let sharded =
            ShardedOnlineDetector::with_mode(DjitDetector::new(AlwaysSampler::new()), 4, mode);
        for (_, event) in trace.iter() {
            sharded.on_event(event.tid.as_u32(), event.kind);
        }
        let (merged_reports, counters) = sharded.finish_merged();
        assert_eq!(merged_reports, reports, "{mode:?}");
        assert_eq!(counters.races as usize, reports.len(), "{mode:?}");
    }
}

// ---------------------------------------------------------------------
// Dense publication differential: engine overrides vs the trait default.
// ---------------------------------------------------------------------

/// Delegating wrapper that inherits the *default*
/// [`SyncEngine::publish_dense`] / `publish_dense_ref` (the per-entry
/// `time_of` linearization) while forwarding everything else, so the
/// memcpy overrides can be pinned against the reference semantics.
struct DefaultDense<E>(E);

use freshtrack_clock::ThreadId;
use freshtrack_core::{FreshnessSyncEngine, OrderedSyncEngine, SyncEngine, VectorSyncEngine};
use freshtrack_trace::LockId;

impl<E: SyncEngine> SyncEngine for DefaultDense<E> {
    type View = E::View;

    fn ensure_thread(&mut self, tid: ThreadId) {
        self.0.ensure_thread(tid);
    }

    fn acquire(&mut self, tid: ThreadId, lock: LockId, counters: &mut Counters) {
        self.0.acquire(tid, lock, counters);
    }

    fn release(
        &mut self,
        tid: ThreadId,
        lock: LockId,
        sampled_since_release: bool,
        counters: &mut Counters,
    ) {
        self.0.release(tid, lock, sampled_since_release, counters);
    }

    fn publish(&mut self, tid: ThreadId) -> Self::View {
        self.0.publish(tid)
    }

    fn reserve_threads(&mut self, n: usize) {
        self.0.reserve_threads(n);
    }
}

/// Drives the same sync-event stream through an engine and its
/// default-dense twin and asserts the dense publications agree at every
/// step, for several width caps — including `usize::MAX` (no promise)
/// and the tight active-width cap the sharded detector uses.
fn assert_dense_matches_default<E: SyncEngine>(
    label: &str,
    mut engine: E,
    mut twin: DefaultDense<E>,
) {
    const THREADS: u32 = 6;
    const LOCKS: u32 = 3;
    let mut counters_a = Counters::new();
    let mut counters_b = Counters::new();
    engine.reserve_threads(32); // wide reservation: idle tail present
    twin.reserve_threads(32);

    let mut active = 0usize;
    let step =
        |engine: &mut E, twin: &mut DefaultDense<E>, active: usize, label: &str, round: u32| {
            let mut a = Vec::new();
            let mut b = Vec::new();
            for t in 0..THREADS {
                let tid = ThreadId::new(t);
                for cap in [usize::MAX, active.max(1), tid.index() + 1] {
                    engine.publish_dense(tid, cap, &mut a);
                    twin.publish_dense(tid, cap, &mut b);
                    assert_eq!(
                        a, b,
                        "[{label}] round {round} tid {t} cap {cap}: override vs default"
                    );
                    if let Some(img) = engine.publish_dense_ref(tid, cap) {
                        assert_eq!(
                            img,
                            &a[..],
                            "[{label}] round {round} tid {t} cap {cap}: ref vs materialized"
                        );
                    }
                }
            }
        };

    for round in 0..40u32 {
        let tid = ThreadId::new(round % THREADS);
        let lock = LockId::new(round % LOCKS);
        active = active.max(tid.index() + 1);
        if round % 2 == 0 {
            engine.acquire(tid, lock, &mut counters_a);
            twin.acquire(tid, lock, &mut counters_b);
        } else {
            let sampled = round % 3 == 0;
            engine.release(tid, lock, sampled, &mut counters_a);
            twin.release(tid, lock, sampled, &mut counters_b);
        }
        step(&mut engine, &mut twin, active, label, round);
    }
}

/// The doc contract on [`SyncEngine::publish_dense`]: the engines'
/// memcpy overrides (and the zero-copy `publish_dense_ref` borrow) are
/// interchangeable with the default per-entry linearization of
/// `publish`'s view, for every engine and width cap.
#[test]
fn dense_publication_matches_default_linearization() {
    assert_dense_matches_default(
        "vector",
        VectorSyncEngine::new(),
        DefaultDense(VectorSyncEngine::new()),
    );
    assert_dense_matches_default(
        "freshness",
        FreshnessSyncEngine::new(),
        DefaultDense(FreshnessSyncEngine::new()),
    );
    for opt in [false, true] {
        assert_dense_matches_default(
            &format!("ordered(local_epoch_opt={opt})"),
            OrderedSyncEngine::new(opt),
            DefaultDense(OrderedSyncEngine::new(opt)),
        );
    }
}
