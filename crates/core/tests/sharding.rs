//! Sharded-ingestion differential suite: the executable form of the
//! replication invariant.
//!
//! [`ShardedOnlineDetector`] routes access events to `hash(var) % N`
//! shards and replicates sync events to all of them, claiming the
//! merged result is indistinguishable from the single-mutex
//! [`OnlineDetector`]: identical (EventId-sorted) race reports and
//! identical per-kind counters. This suite checks that claim for
//!
//! * **shard counts** `N ∈ {1, 2, 4, 7}` (including a prime, so routing
//!   has no accidental alignment with the variable-id space),
//! * **engines** Djit+ (ST), FastTrack, and the ordered-list engine
//!   (SO) — per-variable vector-clock, lossy-epoch, and lazy-copy
//!   histories respectively,
//! * **sampler families** — always, Bernoulli, periodic, never,
//!
//! over fuzzed traces (proptest; scale with `PROPTEST_CASES` — CI runs
//! a hardened pass) and the 6 structured workload patterns × 3 seeds.
//!
//! It also pins the **report-order invariant** the shard merge depends
//! on: [`Detector::run`] and [`OnlineDetector::finish`] yield reports
//! strictly sorted by racing [`EventId`].
//!
//! [`EventId`]: freshtrack_trace::EventId
//! [`OnlineDetector`]: freshtrack_core::OnlineDetector
//! [`OnlineDetector::finish`]: freshtrack_core::OnlineDetector::finish
//! [`ShardedOnlineDetector`]: freshtrack_core::ShardedOnlineDetector

use freshtrack_core::{
    Detector, DjitDetector, FastTrackDetector, OnlineDetector, OrderedListDetector, RaceReport,
};
use freshtrack_sampling::{AlwaysSampler, BernoulliSampler, NeverSampler, PeriodicSampler};
use freshtrack_testutil::{assert_shard_equivalence, trace_from_fuel, workload_matrix};
use freshtrack_trace::Trace;
use proptest::prelude::*;

/// Shard counts under test: identity, powers of two, and a prime.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];

/// Seeds for the structured workload matrix.
const SEEDS: [u64; 3] = [11, 4242, 987_654_321];

/// Structured-cell trace size. No quadratic oracle runs here, so cells
/// can be bigger than the conformance suite's.
const EVENTS: usize = 600;

/// Runs the shard-equivalence contract for all three engines over one
/// `(trace, sampler)` cell.
fn check_all_engines<S: freshtrack_sampling::Sampler + Copy>(label: &str, trace: &Trace, s: S) {
    assert_shard_equivalence(
        &format!("{label}/djit"),
        trace,
        DjitDetector::new(s),
        &SHARD_COUNTS,
    );
    assert_shard_equivalence(
        &format!("{label}/fasttrack"),
        trace,
        FastTrackDetector::new(s),
        &SHARD_COUNTS,
    );
    assert_shard_equivalence(
        &format!("{label}/so"),
        trace,
        OrderedListDetector::new(s),
        &SHARD_COUNTS,
    );
}

#[test]
fn structured_patterns_at_full_sampling() {
    let mut racy_cells = 0usize;
    for (label, trace) in workload_matrix(EVENTS, &SEEDS) {
        let reports = assert_shard_equivalence(
            &format!("{label}/djit"),
            &trace,
            DjitDetector::new(AlwaysSampler::new()),
            &SHARD_COUNTS,
        );
        racy_cells += usize::from(!reports.is_empty());
        assert_shard_equivalence(
            &format!("{label}/fasttrack"),
            &trace,
            FastTrackDetector::new(AlwaysSampler::new()),
            &SHARD_COUNTS,
        );
        assert_shard_equivalence(
            &format!("{label}/so"),
            &trace,
            OrderedListDetector::new(AlwaysSampler::new()),
            &SHARD_COUNTS,
        );
    }
    // Equivalence on raceless cells is a weak check; the generator
    // seeds unprotected accesses, so most cells must be racy.
    assert!(
        racy_cells >= 6,
        "only {racy_cells} racy cells in the shard-equivalence matrix"
    );
}

#[test]
fn structured_patterns_under_bernoulli_sampling() {
    for &rate in &[0.03f64, 0.3] {
        for (label, trace) in workload_matrix(EVENTS, &SEEDS) {
            let seed = label.bytes().fold(0x5ead_beefu64, |h, b| {
                (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
            }) ^ rate.to_bits();
            check_all_engines(
                &format!("{label}@bernoulli-{rate}"),
                &trace,
                BernoulliSampler::new(rate, seed),
            );
        }
    }
}

#[test]
fn structured_patterns_under_periodic_and_never_sampling() {
    for (label, trace) in workload_matrix(EVENTS, &SEEDS) {
        check_all_engines(
            &format!("{label}@periodic-16"),
            &trace,
            PeriodicSampler::new(0.3, 16, 5),
        );
        let reports = assert_shard_equivalence(
            &format!("{label}@never/djit"),
            &trace,
            DjitDetector::new(NeverSampler::new()),
            &SHARD_COUNTS,
        );
        assert!(
            reports.is_empty(),
            "[{label}] empty sample set must stay silent"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Fuzzed traces: every engine, every shard count, Bernoulli
    /// sampling with arbitrary seed and rate.
    #[test]
    fn fuzzed_traces_shard_equivalence(
        fuel in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..150),
        seed in any::<u64>(),
        rate in 0.05f64..1.0,
    ) {
        let trace = trace_from_fuel(&fuel, 5, 3, 4);
        prop_assume!(trace.validate().is_ok());
        check_all_engines("fuzz", &trace, BernoulliSampler::new(rate, seed));
    }

    /// Fuzzed traces at full sampling with more threads than shards in
    /// some configurations (8 threads vs N ∈ {1,2,4,7}).
    #[test]
    fn fuzzed_wide_traces_shard_equivalence(
        fuel in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..200),
    ) {
        let trace = trace_from_fuel(&fuel, 8, 4, 6);
        prop_assume!(trace.validate().is_ok());
        check_all_engines("fuzz-wide", &trace, AlwaysSampler::new());
    }

    /// Report-order regression (the invariant the shard merge builds
    /// on): every engine's `run` yields reports strictly sorted by
    /// racing EventId, and the single-mutex online façade preserves
    /// that through `finish`.
    #[test]
    fn reports_are_sorted_by_event_id(
        fuel in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..150),
    ) {
        fn assert_sorted(label: &str, reports: &[RaceReport]) {
            assert!(
                reports.windows(2).all(|w| w[0].event < w[1].event),
                "[{label}] reports out of EventId order: {reports:?}"
            );
        }
        let trace = trace_from_fuel(&fuel, 4, 3, 3);
        prop_assume!(trace.validate().is_ok());

        assert_sorted("djit", &DjitDetector::new(AlwaysSampler::new()).run(&trace));
        assert_sorted(
            "fasttrack",
            &FastTrackDetector::new(AlwaysSampler::new()).run(&trace),
        );
        assert_sorted("so", &OrderedListDetector::new(AlwaysSampler::new()).run(&trace));

        let online = OnlineDetector::new(DjitDetector::new(AlwaysSampler::new()));
        for (_, event) in trace.iter() {
            online.on_event(event.tid.as_u32(), event.kind);
        }
        let (_, reports) = online.finish();
        assert_sorted("online", &reports);
        assert_eq!(
            reports,
            DjitDetector::new(AlwaysSampler::new()).run(&trace),
            "online façade must replay the trace verbatim"
        );
    }
}

/// A deterministic non-proptest regression: the racy mixed pattern has
/// multiple reports, and the sharded merge keeps them sorted and equal
/// to the baseline for every shard count.
#[test]
fn regression_sorted_merge_on_racy_cell() {
    let (label, trace) = workload_matrix(EVENTS, &[11])
        .into_iter()
        .next()
        .expect("matrix is non-empty");
    let reports = assert_shard_equivalence(
        &label,
        &trace,
        DjitDetector::new(AlwaysSampler::new()),
        &SHARD_COUNTS,
    );
    assert!(reports.len() >= 2, "[{label}] want a multi-report cell");
    assert!(reports.windows(2).all(|w| w[0].event < w[1].event));
}
