//! Hoisted-vs-inline differential suite for the lock-free skip path
//! (invariant 10 in `ARCHITECTURE.md`).
//!
//! The online façades evaluate the sampler *before* any lock — via
//! [`Detector::hoisted_decider`] — and sampled-out accesses never
//! reach an engine; a sequential [`Detector::run`] decides inline, in
//! the middle of `process`. Both must be indistinguishable: identical
//! (EventId-sorted) race reports and **full** [`Counters`] equality —
//! every field, including the work counters — because the hoisted
//! decision changes *where* the pure `(seed, EventId)` verdict is
//! computed, never *what* the detector does with it.
//!
//! Coverage: all five engines × sampler families {always, never,
//! Bernoulli, periodic, targeted} × batch capacities {1, 8} × shard
//! counts {1, 2, 4, 7}, over fuzzed (proptest) and structured traces.
//! Replicated mode is exempt from the work-counter comparison by
//! design (its sync fan-out multiplies clock work `N×`); the two-plane
//! modes are held to full equality.
//!
//! Two regressions ride along:
//! * a fully sampled-out stream must acquire **zero** shard locks
//!   (pinned through the debug-only acquisition counter), and
//! * concurrent lock-free ticket draws must neither lose nor duplicate
//!   events (the multi-threaded stress below, the shard-level sibling
//!   of `crates/clock/tests/seqlock_stress.rs`).

use std::sync::Arc;

use freshtrack_core::{
    Counters, Detector, DjitDetector, FastTrackDetector, FreshnessDetector, NaiveSamplingDetector,
    OnlineDetector, OrderedListDetector, ShardedOnlineDetector, SplitDetector, SyncMode,
};
use freshtrack_sampling::{
    AlwaysSampler, BernoulliSampler, NeverSampler, PeriodicSampler, Sampler, TargetedSampler,
};
use freshtrack_testutil::{trace_from_fuel, workload_matrix};
use freshtrack_trace::{Trace, VarId};
use proptest::prelude::*;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];
const BATCH_SIZES: [usize; 2] = [1, 8];

/// Feeds `trace` through a hoisted façade built by `build`, returning
/// reports and counters.
fn run_online<D: Detector>(
    trace: &Trace,
    detector: D,
) -> (Vec<freshtrack_core::RaceReport>, Counters) {
    let online = OnlineDetector::new(detector);
    for (_, event) in trace.iter() {
        online.on_event(event.tid.as_u32(), event.kind);
    }
    let (inner, reports) = online.finish();
    let counters = *inner.counters();
    (reports, counters)
}

/// The inline baseline plus full-equality checks against the
/// single-mutex façade and every two-plane sharded configuration.
fn assert_hoisted_matches_inline<D: SplitDetector>(label: &str, trace: &Trace, detector: D) {
    let mut inline = detector.clone();
    let expected_reports = inline.run(trace);
    let expected = *inline.counters();

    // Single-mutex façade: the hoisted skip path vs the same detector
    // deciding inline. Full Counters equality, no exemptions.
    let (reports, counters) = run_online(trace, detector.clone());
    assert_eq!(reports, expected_reports, "[{label}] online reports");
    assert_eq!(counters, expected, "[{label}] online counters");

    // Sharded two-plane modes: full equality as well — the sync plane
    // performs the monolith's clock ops exactly once and the access
    // planes partition the per-variable work.
    for &shards in &SHARD_COUNTS {
        for mode in [SyncMode::Shared, SyncMode::Seqlock] {
            for &batch in &BATCH_SIZES {
                let sharded =
                    ShardedOnlineDetector::with_options(detector.clone(), shards, mode, batch);
                for (_, event) in trace.iter() {
                    sharded.on_event(event.tid.as_u32(), event.kind);
                }
                let (reports, merged) = sharded.finish_merged();
                assert_eq!(
                    reports, expected_reports,
                    "[{label}] sharded({shards}, {mode:?}, B={batch}) reports"
                );
                assert_eq!(
                    merged, expected,
                    "[{label}] sharded({shards}, {mode:?}, B={batch}) counters"
                );
            }
        }
        // Replicated mode: observation counters only (sync work fans
        // out N×, which Counters::merge keeps honest by summing).
        for &batch in &BATCH_SIZES {
            let sharded = ShardedOnlineDetector::with_options(
                detector.clone(),
                shards,
                SyncMode::Replicated,
                batch,
            );
            for (_, event) in trace.iter() {
                sharded.on_event(event.tid.as_u32(), event.kind);
            }
            let (reports, merged) = sharded.finish_merged();
            assert_eq!(
                reports, expected_reports,
                "[{label}] replicated({shards}, B={batch}) reports"
            );
            for (field, got, want) in [
                ("events", merged.events, expected.events),
                ("reads", merged.reads, expected.reads),
                ("writes", merged.writes, expected.writes),
                (
                    "sampled_accesses",
                    merged.sampled_accesses,
                    expected.sampled_accesses,
                ),
                (
                    "skipped_accesses",
                    merged.skipped_accesses(),
                    expected.skipped_accesses(),
                ),
                ("acquires", merged.acquires, expected.acquires),
                ("releases", merged.releases, expected.releases),
                ("races", merged.races, expected.races),
            ] {
                assert_eq!(
                    got, want,
                    "[{label}] replicated({shards}, B={batch}) counter `{field}`"
                );
            }
        }
    }
}

/// Online-only variant for engines that are not [`SplitDetector`]s
/// (the naive baseline cannot shard, but its hoisted skip path must
/// still match its inline one exactly).
fn assert_online_matches_inline<D: Detector + Clone>(label: &str, trace: &Trace, detector: D) {
    let mut inline = detector.clone();
    let expected_reports = inline.run(trace);
    let expected = *inline.counters();
    let (reports, counters) = run_online(trace, detector);
    assert_eq!(reports, expected_reports, "[{label}] online reports");
    assert_eq!(counters, expected, "[{label}] online counters");
}

/// One `(trace, sampler)` cell across all five engines.
fn check_all_engines<S: Sampler + Clone + Send>(label: &str, trace: &Trace, s: S) {
    assert_hoisted_matches_inline(
        &format!("{label}/djit"),
        trace,
        DjitDetector::new(s.clone()),
    );
    assert_hoisted_matches_inline(
        &format!("{label}/fasttrack"),
        trace,
        FastTrackDetector::new(s.clone()),
    );
    assert_online_matches_inline(
        &format!("{label}/naive"),
        trace,
        NaiveSamplingDetector::new(s.clone()),
    );
    assert_hoisted_matches_inline(
        &format!("{label}/su"),
        trace,
        FreshnessDetector::new(s.clone()),
    );
    assert_hoisted_matches_inline(&format!("{label}/so"), trace, OrderedListDetector::new(s));
}

#[test]
fn structured_patterns_across_sampler_families() {
    for (label, trace) in workload_matrix(400, &[7]) {
        check_all_engines(&format!("{label}/always"), &trace, AlwaysSampler::new());
        check_all_engines(&format!("{label}/never"), &trace, NeverSampler::new());
        check_all_engines(
            &format!("{label}/bernoulli"),
            &trace,
            BernoulliSampler::new(0.3, 11),
        );
        check_all_engines(
            &format!("{label}/periodic"),
            &trace,
            PeriodicSampler::new(0.5, 16, 23),
        );
        check_all_engines(
            &format!("{label}/targeted"),
            &trace,
            TargetedSampler::new([VarId::new(0), VarId::new(3)]),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn fuzzed_traces_hoisted_equivalence(
        fuel in proptest::collection::vec((0u8..8, 0u8..4, 0u8..6), 1..200),
        rate_millis in 0u32..=1000,
        seed in 0u64..1000,
    ) {
        let trace = trace_from_fuel(&fuel, 4, 3, 5);
        let rate = f64::from(rate_millis) / 1000.0;
        check_all_engines("fuzz", &trace, BernoulliSampler::new(rate, seed));
    }
}

/// A fully sampled-out stream must never touch a shard (or batch)
/// lock: the skip path is two relaxed RMWs, full stop. Debug builds
/// only — the acquisition counter does not exist in release.
#[cfg(debug_assertions)]
#[test]
fn never_sampler_takes_zero_shard_locks() {
    for mode in [SyncMode::Shared, SyncMode::Seqlock] {
        for &batch in &BATCH_SIZES {
            let sharded = ShardedOnlineDetector::with_options(
                DjitDetector::new(NeverSampler::new()),
                4,
                mode,
                batch,
            );
            for i in 0..200u32 {
                let t = i % 3;
                sharded.acquire(t, 0);
                sharded.write(t, i % 17);
                sharded.read(t, (i + 1) % 17);
                sharded.release(t, 0);
            }
            assert_eq!(
                sharded.debug_shard_lock_acquisitions(),
                0,
                "{mode:?} B={batch}: sampled-out accesses must stay lock-free"
            );
            let (reports, merged) = sharded.finish_merged();
            assert!(reports.is_empty());
            assert_eq!(merged.events, 800);
            assert_eq!(merged.skipped_accesses(), 400);
            assert_eq!(merged.sampled_accesses, 0);
        }
    }
}

/// With an always-true decider every access takes its shard (or batch)
/// lock — the counter counts, it does not just stay zero.
#[cfg(debug_assertions)]
#[test]
fn always_sampler_accounts_for_its_shard_locks() {
    let sharded = ShardedOnlineDetector::with_mode(
        DjitDetector::new(AlwaysSampler::new()),
        2,
        SyncMode::Seqlock,
    );
    for v in 0..10 {
        sharded.write(0, v);
    }
    assert_eq!(sharded.debug_shard_lock_acquisitions(), 10);
}

/// Multi-threaded stress for the hoisted ticket draw: many threads
/// hammer accesses with no application lock, so tickets are drawn
/// concurrently and shard processing can invert ticket order. Nothing
/// may be lost or duplicated: every ticket is drawn exactly once
/// (`events_processed`), every access is tallied exactly once
/// (sampled + skipped = issued), and the merged report list is
/// strictly sorted.
#[test]
fn concurrent_ticket_draws_lose_nothing() {
    const THREADS: u32 = 4;
    const OPS: u32 = 2000;
    for mode in [SyncMode::Shared, SyncMode::Seqlock, SyncMode::Replicated] {
        for &batch in &BATCH_SIZES {
            let sharded = Arc::new(ShardedOnlineDetector::with_options(
                DjitDetector::new(BernoulliSampler::new(0.05, 42)),
                4,
                mode,
                batch,
            ));
            sharded.reserve_threads(THREADS as usize);
            let handles: Vec<_> = (0..THREADS)
                .map(|t| {
                    let sharded = Arc::clone(&sharded);
                    std::thread::spawn(move || {
                        for i in 0..OPS {
                            if i % 64 == 63 {
                                sharded.acquire(t, t);
                                sharded.release(t, t);
                            } else if i % 2 == 0 {
                                sharded.write(t, i % 31);
                            } else {
                                sharded.read(t, i % 31);
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            // Each sync iteration issues two events (acquire+release),
            // each access iteration one.
            let sync_events = u64::from(THREADS) * 2 * u64::from(OPS / 64);
            let accesses = u64::from(THREADS) * u64::from(OPS - OPS / 64);
            let total = accesses + sync_events;
            assert_eq!(sharded.events_processed(), total, "{mode:?} B={batch}");
            let (reports, merged) = Arc::try_unwrap(sharded).ok().unwrap().finish_merged();
            assert_eq!(merged.events, total, "{mode:?} B={batch}");
            assert_eq!(
                merged.sampled_accesses + merged.skipped_accesses(),
                accesses,
                "{mode:?} B={batch}: every access is either analyzed or tallied"
            );
            assert_eq!(merged.reads + merged.writes, accesses);
            assert!(
                reports.windows(2).all(|w| w[0].event < w[1].event),
                "{mode:?} B={batch}: merged reports must be strictly sorted"
            );
        }
    }
}
