//! Property-based equivalence tests for the detector engines.
//!
//! The paper's Lemmas 4, 7 and 8 state that Algorithms 2, 3 and 4 declare
//! exactly the same races (for the same sample set), and that these are
//! exactly the races of the naive "skip non-sampled accesses" Djit+
//! variant. These tests check that claim on thousands of randomized valid
//! traces, and validate all engines against an independent ground-truth
//! happens-before oracle.

use freshtrack_core::{
    Detector, DjitDetector, FastTrackDetector, FreshnessDetector, HbOracle, NaiveSamplingDetector,
    OrderedListDetector, RaceReport,
};
use freshtrack_sampling::{AlwaysSampler, BernoulliSampler, PeriodicSampler, Sampler};
use freshtrack_testutil::trace_from_fuel;
use freshtrack_trace::{Trace, TraceBuilder};
use proptest::prelude::*;

/// Raw fuel for the shared trace interpreter
/// ([`freshtrack_testutil::trace_from_fuel`]): each tuple is
/// `(thread, action, operand)`.
type Fuel = Vec<(u8, u8, u8)>;

fn interpret(fuel: &Fuel, threads: u8, locks: u8, vars: u8) -> Trace {
    trace_from_fuel(fuel, threads, locks, vars)
}

fn fuel_strategy(len: usize) -> impl Strategy<Value = Fuel> {
    prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..len)
}

fn all_sampling_engines_agree<S: Sampler + Copy>(trace: &Trace, sampler: S) -> Vec<RaceReport> {
    let reference = NaiveSamplingDetector::new(sampler).run(trace);
    let st = DjitDetector::new(sampler).run(trace);
    let su = FreshnessDetector::new(sampler).run(trace);
    let so = OrderedListDetector::new(sampler).run(trace);
    let so_plain = OrderedListDetector::with_options(sampler, false).run(trace);
    assert_eq!(reference, st, "Djit+(S) vs Algorithm 2");
    assert_eq!(reference, su, "Algorithm 3 (SU) vs Algorithm 2");
    assert_eq!(reference, so, "Algorithm 4 (SO) vs Algorithm 2");
    assert_eq!(reference, so_plain, "SO without epoch opt vs Algorithm 2");
    reference
}

fn check_against_oracle<S: Sampler + Copy>(trace: &Trace, sampler: S, reports: &[RaceReport]) {
    let oracle = HbOracle::new(trace);
    let mask = HbOracle::sample_mask(trace, sampler);
    let racy = oracle.racy_events(&mask);
    // Per-event soundness: every reported event is truly racy.
    for report in reports {
        assert!(
            racy.contains(&report.event),
            "detector reported non-racy event {} (racy: {racy:?})",
            report.event
        );
    }
    // Trace-level completeness, and agreement on the first racy event.
    assert_eq!(
        reports.first().map(|r| r.event),
        racy.first().copied(),
        "first report mismatch"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn engines_agree_at_full_sampling(fuel in fuel_strategy(120)) {
        let trace = interpret(&fuel, 4, 3, 3);
        prop_assume!(trace.validate().is_ok());
        let reports = all_sampling_engines_agree(&trace, AlwaysSampler::new());
        check_against_oracle(&trace, AlwaysSampler::new(), &reports);
    }

    #[test]
    fn engines_agree_under_bernoulli_sampling(
        fuel in fuel_strategy(150),
        seed in any::<u64>(),
        rate in 0.05f64..0.9,
    ) {
        let trace = interpret(&fuel, 4, 3, 3);
        prop_assume!(trace.validate().is_ok());
        let sampler = BernoulliSampler::new(rate, seed);
        let reports = all_sampling_engines_agree(&trace, sampler);
        check_against_oracle(&trace, sampler, &reports);
    }

    #[test]
    fn engines_agree_under_periodic_sampling(
        fuel in fuel_strategy(150),
        seed in any::<u64>(),
        period in 1u64..40,
    ) {
        let trace = interpret(&fuel, 3, 4, 2);
        prop_assume!(trace.validate().is_ok());
        let sampler = PeriodicSampler::new(0.3, period, seed);
        let reports = all_sampling_engines_agree(&trace, sampler);
        check_against_oracle(&trace, sampler, &reports);
    }

    #[test]
    fn engines_agree_with_many_threads(fuel in fuel_strategy(200)) {
        let trace = interpret(&fuel, 8, 5, 4);
        prop_assume!(trace.validate().is_ok());
        let sampler = BernoulliSampler::new(0.3, 7);
        let reports = all_sampling_engines_agree(&trace, sampler);
        check_against_oracle(&trace, sampler, &reports);
    }

    #[test]
    fn fasttrack_matches_djit_on_first_race(fuel in fuel_strategy(120)) {
        let trace = interpret(&fuel, 4, 3, 3);
        prop_assume!(trace.validate().is_ok());
        let djit = DjitDetector::new(AlwaysSampler::new()).run(&trace);
        let ft = FastTrackDetector::new(AlwaysSampler::new()).run(&trace);
        // FastTrack is precise for the *first* race on each variable.
        let djit_first = djit.first().map(|r| r.event);
        let ft_first = ft.first().map(|r| r.event);
        prop_assert_eq!(djit_first, ft_first);
        // And they agree on whether the trace is racy at all.
        prop_assert_eq!(djit.is_empty(), ft.is_empty());
    }

    #[test]
    fn fasttrack_is_sound_per_event(fuel in fuel_strategy(120)) {
        let trace = interpret(&fuel, 4, 3, 3);
        prop_assume!(trace.validate().is_ok());
        let oracle = HbOracle::new(&trace);
        let mask = HbOracle::sample_mask(&trace, AlwaysSampler::new());
        let racy = oracle.racy_events(&mask);
        for report in FastTrackDetector::new(AlwaysSampler::new()).run(&trace) {
            prop_assert!(racy.contains(&report.event));
        }
    }

    #[test]
    fn work_bounds_hold(
        fuel in fuel_strategy(200),
        seed in any::<u64>(),
    ) {
        let trace = interpret(&fuel, 4, 3, 3);
        prop_assume!(trace.validate().is_ok());
        let sampler = BernoulliSampler::new(0.2, seed);
        let mut so = OrderedListDetector::new(sampler);
        so.run(&trace);
        let c = so.counters();
        let t = trace.thread_count() as u64;
        // Local increments happen only at first-release-after-sample.
        prop_assert!(c.local_increments <= c.sampled_accesses);
        // Deep copies are bounded by clock mutations: O(|S|·T).
        prop_assert!(c.deep_copies <= (c.sampled_accesses + 1) * (t + 1));
        // Every acquire is either skipped or processed.
        prop_assert_eq!(c.acquires_skipped + c.acquires_processed, c.acquires);
        // Shallow copies: exactly one per release.
        prop_assert_eq!(c.shallow_copies, c.releases);
    }

    #[test]
    fn empty_sample_set_reports_nothing(fuel in fuel_strategy(150)) {
        let trace = interpret(&fuel, 4, 3, 3);
        prop_assume!(trace.validate().is_ok());
        let sampler = BernoulliSampler::new(0.0, 0);
        let reports = all_sampling_engines_agree(&trace, sampler);
        prop_assert!(reports.is_empty());
    }
}

#[test]
fn regression_two_phase_handover() {
    // A tricky shape: information flows t0 → t1 → t2 with t0's clock
    // reaching t2 only through a chain of partially-traversed lists.
    let mut b = TraceBuilder::new();
    let x = b.var("x");
    let y = b.var("y");
    let l = b.lock("l");
    let m = b.lock("m");
    b.write(0, x);
    b.acquire(0, l).release(0, l);
    b.acquire(1, l).release(1, l);
    b.write(1, y);
    b.acquire(1, m).release(1, m);
    b.acquire(2, m).release(2, m);
    b.read(2, x); // ordered after t0's write via l→m chain
    b.read(2, y); // ordered after t1's write via m
    let trace = b.build();
    let reports = all_sampling_engines_agree(&trace, AlwaysSampler::new());
    assert!(reports.is_empty(), "{reports:?}");
}

#[test]
fn regression_skip_then_learn() {
    // An acquire that is skippable must not erase later learning.
    let mut b = TraceBuilder::new();
    let x = b.var("x");
    let l = b.lock("l");
    // t0 writes and publishes via l.
    b.acquire(0, l).write(0, x).release(0, l);
    // t1 syncs twice: the second acquire is redundant.
    b.acquire(1, l).release(1, l);
    b.acquire(1, l).release(1, l);
    // t0 writes again and publishes.
    b.acquire(0, l).write(0, x).release(0, l);
    // t1 syncs and reads: must be ordered.
    b.acquire(1, l).read(1, x).release(1, l);
    let trace = b.build();
    let reports = all_sampling_engines_agree(&trace, AlwaysSampler::new());
    assert!(reports.is_empty(), "{reports:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `reserve_threads` (TSan-style fixed clock width) must never
    /// change verdicts — it only pre-sizes clock state.
    #[test]
    fn clock_width_reservation_is_verdict_invariant(
        fuel in fuel_strategy(120),
        seed in any::<u64>(),
    ) {
        let trace = interpret(&fuel, 4, 3, 3);
        prop_assume!(trace.validate().is_ok());
        let sampler = BernoulliSampler::new(0.4, seed);
        for width in [0usize, 8, 64] {
            let mut st = DjitDetector::new(sampler);
            st.reserve_threads(width);
            let mut su = FreshnessDetector::new(sampler);
            su.reserve_threads(width);
            let mut so = OrderedListDetector::new(sampler);
            so.reserve_threads(width);
            let mut ft = FastTrackDetector::new(sampler);
            ft.reserve_threads(width);
            let mut sam = NaiveSamplingDetector::new(sampler);
            sam.reserve_threads(width);

            let baseline = NaiveSamplingDetector::new(sampler).run(&trace);
            prop_assert_eq!(&baseline, &st.run(&trace), "ST width {}", width);
            prop_assert_eq!(&baseline, &su.run(&trace), "SU width {}", width);
            prop_assert_eq!(&baseline, &so.run(&trace), "SO width {}", width);
            prop_assert_eq!(&baseline, &sam.run(&trace), "SAM width {}", width);
            // FastTrack agrees on the first race (per-variable epoch
            // histories differ afterwards).
            let ft_reports = ft.run(&trace);
            let full = DjitDetector::new(sampler).run(&trace);
            prop_assert_eq!(
                ft_reports.first().map(|r| r.event),
                full.first().map(|r| r.event)
            );
        }
    }

    /// Counters must satisfy their structural invariants on every engine.
    #[test]
    fn counter_invariants_hold(fuel in fuel_strategy(150), seed in any::<u64>()) {
        let trace = interpret(&fuel, 5, 4, 3);
        prop_assume!(trace.validate().is_ok());
        let sampler = BernoulliSampler::new(0.3, seed);

        let mut engines: Vec<Box<dyn Detector>> = vec![
            Box::new(DjitDetector::new(sampler)),
            Box::new(NaiveSamplingDetector::new(sampler)),
            Box::new(FreshnessDetector::new(sampler)),
            Box::new(OrderedListDetector::new(sampler)),
            Box::new(FastTrackDetector::new(sampler)),
        ];
        for engine in &mut engines {
            let reports = engine.run(&trace);
            let c = *engine.counters();
            prop_assert_eq!(c.events as usize, trace.len(), "{}", engine.name());
            prop_assert_eq!(c.reads + c.writes + c.acquires + c.releases, c.events);
            prop_assert_eq!(c.acquires_skipped + c.acquires_processed, c.acquires);
            prop_assert!(c.sampled_accesses <= c.accesses());
            prop_assert!(c.races as usize == reports.len());
            prop_assert!(c.race_checks >= c.races);
            prop_assert!(c.local_increments <= c.releases);
        }
    }
}
