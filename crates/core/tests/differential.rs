//! Differential conformance harness: the executable form of the paper's
//! sampling-equivalence theorems over *structured* workloads.
//!
//! Where `equivalence.rs` hammers the engines with unstructured fuzzed
//! traces, this suite runs the full cross-product of
//!
//! * **5 detectors** — Djit+ (ST), FastTrack, NaiveSampling (Algorithm
//!   2), Freshness (SU, Algorithm 3), OrderedList (SO, Algorithm 4) —
//!   plus SO with its local-epoch optimization disabled,
//! * **6 workload patterns** — mixed, producer/consumer, pipeline,
//!   fork/join, barrier phases, and the paper's Fig. 1 lock ladder,
//! * **3 seeds per pattern**, and
//! * **4 sampler families** — always, Bernoulli (two rates), periodic,
//!   and never,
//!
//! asserting on every cell that the sampling engines are
//! report-identical, that FastTrack agrees on the first race, and that
//! the common report list matches the ground-truth [`HbOracle`] on the
//! sampled accesses (per-event soundness + first-racy-event agreement).
//!
//! [`HbOracle`]: freshtrack_core::HbOracle

use freshtrack_core::HbOracle;
use freshtrack_sampling::{AlwaysSampler, BernoulliSampler, NeverSampler, PeriodicSampler};
use freshtrack_testutil::{assert_conformance, workload_matrix};

/// Seeds for the workload generator (one trace per pattern per seed).
const SEEDS: [u64; 3] = [11, 4242, 987_654_321];

/// Trace size: big enough to exercise real clock growth and lock reuse,
/// small enough that the quadratic oracle stays cheap per cell.
const EVENTS: usize = 700;

#[test]
fn conformance_at_full_sampling() {
    let mut racy_cells = 0usize;
    for (label, trace) in workload_matrix(EVENTS, &SEEDS) {
        let reports = assert_conformance(&label, &trace, AlwaysSampler::new());
        racy_cells += usize::from(!reports.is_empty());
    }
    // The matrix must actually contain races for agreement to mean
    // anything; the generator seeds unprotected accesses in every
    // pattern, so a raceless matrix signals a generator regression.
    assert!(
        racy_cells >= 6,
        "only {racy_cells} racy cells in the full-sampling matrix"
    );
}

#[test]
fn conformance_under_bernoulli_sampling() {
    // The paper's evaluation rates: 3% (deployment) and 30% (stress).
    for &rate in &[0.03f64, 0.3] {
        for (label, trace) in workload_matrix(EVENTS, &SEEDS) {
            // Derive the sampler seed from the cell label and rate so
            // every cell sees a different sample set, reproducibly.
            let seed = label.bytes().fold(0xfee1_600du64, |h, b| {
                (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
            }) ^ rate.to_bits().rotate_left(7);
            let label = format!("{label}@bernoulli-{rate}");
            assert_conformance(&label, &trace, BernoulliSampler::new(rate, seed));
        }
    }
}

#[test]
fn conformance_under_periodic_sampling() {
    for (label, trace) in workload_matrix(EVENTS, &SEEDS) {
        for &period in &[7u64, 64] {
            let label = format!("{label}@periodic-{period}");
            assert_conformance(&label, &trace, PeriodicSampler::new(0.3, period, 5));
        }
    }
}

#[test]
fn conformance_with_empty_sample_set() {
    // With S = ∅ every engine must stay silent, and the oracle agrees
    // (no sampled access can race).
    for (label, trace) in workload_matrix(EVENTS, &SEEDS) {
        let reports = assert_conformance(&label, &trace, NeverSampler::new());
        assert!(
            reports.is_empty(),
            "[{label}] engines reported races for the empty sample set"
        );
    }
}

#[test]
fn sampling_only_shrinks_race_detection() {
    // Growing the sample set can only grow what is detectable. Note the
    // guarantee is trace-level, not event-level: the engines keep
    // *last-access* histories, so the particular events reported can
    // legitimately differ between sample sets — but a trace that is racy
    // under some sample set must also be racy under full sampling, and
    // the oracle's racy-event set must be monotone in the mask.
    for (label, trace) in workload_matrix(EVENTS, &SEEDS) {
        let full = assert_conformance(&label, &trace, AlwaysSampler::new());
        let sampler = BernoulliSampler::new(0.3, 99);
        let sampled = assert_conformance(&format!("{label}@bernoulli-0.3"), &trace, sampler);
        assert!(
            sampled.is_empty() || !full.is_empty(),
            "[{label}] racy under sampling but race-free at full sampling"
        );

        let oracle = HbOracle::new(&trace);
        let full_racy = oracle.racy_events(&HbOracle::sample_mask(&trace, AlwaysSampler::new()));
        let sampled_racy = oracle.racy_events(&HbOracle::sample_mask(&trace, sampler));
        for event in &sampled_racy {
            assert!(
                full_racy.contains(event),
                "[{label}] oracle racy set is not monotone: {event} missing at full sampling"
            );
        }
    }
}
