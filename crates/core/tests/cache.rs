//! Differential suite for the incremental analyzer (invariant 11).
//!
//! `analyze_segments_cached` must be **byte-identical** — reports and
//! every `Counters` field — to a cold `analyze_segments` run over the
//! same file, for every engine, sampler, job count, and append point,
//! and the sidecar it rewrites after a warm run must equal the one a
//! cold run writes. A cache is *never* silently reused across a
//! fingerprint change or any corruption of the sidecar or the trace
//! file: corruption demotes to a cold run (or surfaces the exact error
//! the cold run reports).

use std::io::Cursor;

use freshtrack_core::{
    analyze_segments, analyze_segments_cached, CheckpointState, DjitDetector, FastTrackDetector,
    FreshnessDetector, OrderedListDetector, SplitDetector, CACHE_STATE_VERSION,
};
use freshtrack_sampling::{AlwaysSampler, BernoulliSampler, NeverSampler, Sampler};
use freshtrack_testutil::workload_matrix;
use freshtrack_trace::{
    write_trace_binary_v2, AnalysisCache, CacheConfig, SegmentOptions, SegmentedTraceFile, Trace,
    TraceBuilder,
};

const EVENTS_PER_SEGMENT: usize = 8;

fn v2_bytes(trace: &Trace, events_per_segment: usize) -> Vec<u8> {
    let mut bytes = Vec::new();
    write_trace_binary_v2(trace, &mut bytes, &SegmentOptions { events_per_segment })
        .expect("in-memory v2 encode cannot fail");
    bytes
}

fn open(bytes: &[u8]) -> SegmentedTraceFile<Cursor<&[u8]>> {
    SegmentedTraceFile::open(Cursor::new(bytes)).expect("freshly written v2 file must open")
}

fn config(engine: &str, sampler: &str, jobs: usize) -> CacheConfig {
    CacheConfig {
        engine: engine.to_string(),
        sampler: sampler.to_string(),
        options: format!("events_per_segment={EVENTS_PER_SEGMENT}"),
        state_version: CACHE_STATE_VERSION,
        jobs: jobs as u32,
    }
}

/// Asserts the full incremental contract for one (trace, engine,
/// sampler) cell: cold cached run ≡ plain run, sidecar round-trips
/// through bytes, and resuming from a prefix of the sidecar at *every*
/// segment boundary reproduces the cold analysis and the cold sidecar.
fn assert_incremental_matches_cold<D, S>(
    label: &str,
    trace: &Trace,
    detector: &D,
    sampler: &S,
    engine: &str,
    sampler_name: &str,
) where
    D: SplitDetector,
    D::Sync: CheckpointState,
    D::Access: CheckpointState,
    S: Sampler + Clone + Send,
{
    let bytes = v2_bytes(trace, EVENTS_PER_SEGMENT);
    for jobs in [1, 2] {
        let cfg = config(engine, sampler_name, jobs);
        let plain = analyze_segments(&mut open(&bytes), detector, sampler, jobs)
            .expect("well-formed traces must analyze");
        let cold = analyze_segments_cached(&mut open(&bytes), detector, sampler, jobs, &cfg, None)
            .expect("well-formed traces must analyze");
        assert_eq!(cold.reused_segments, 0, "[{label}] jobs={jobs}");
        assert_eq!(
            cold.analysis.reports, plain.reports,
            "[{label}] jobs={jobs}"
        );
        assert_eq!(
            cold.analysis.counters, plain.counters,
            "[{label}] jobs={jobs}"
        );

        // The sidecar survives its own wire format.
        let decoded = AnalysisCache::decode(&cold.cache.encode())
            .expect("freshly encoded sidecar must decode");
        assert_eq!(
            decoded, cold.cache,
            "[{label}] jobs={jobs}: sidecar round trip"
        );

        // Resume from every append point. A sidecar truncated to `k`
        // entries is exactly what the run over the first `k` segments
        // wrote: analysis state at a boundary depends only on the
        // events before it.
        for k in 0..=cold.total_segments {
            let mut prior = cold.cache.clone();
            prior.entries.truncate(k);
            let warm = analyze_segments_cached(
                &mut open(&bytes),
                detector,
                sampler,
                jobs,
                &cfg,
                Some(&prior),
            )
            .expect("well-formed traces must analyze");
            assert_eq!(
                warm.reused_segments, k,
                "[{label}] jobs={jobs} k={k}: prefix not fully reused"
            );
            assert_eq!(
                warm.analysis.reports, plain.reports,
                "[{label}] jobs={jobs} k={k}: reports diverged"
            );
            assert_eq!(
                warm.analysis.counters, plain.counters,
                "[{label}] jobs={jobs} k={k}: counters diverged"
            );
            assert_eq!(
                warm.analysis.threads, cold.analysis.threads,
                "[{label}] jobs={jobs} k={k}"
            );
            assert_eq!(
                warm.cache, cold.cache,
                "[{label}] jobs={jobs} k={k}: rewritten sidecar diverged"
            );
        }
    }
}

#[test]
fn incremental_matches_cold_across_engines_and_samplers() {
    let rate = BernoulliSampler::new(0.3, 11);
    for (name, trace) in workload_matrix(240, &[1]) {
        assert_incremental_matches_cold(
            &format!("{name}/djit/always"),
            &trace,
            &DjitDetector::new(AlwaysSampler::new()),
            &AlwaysSampler::new(),
            "djit",
            "always",
        );
        assert_incremental_matches_cold(
            &format!("{name}/ft/bernoulli0.3"),
            &trace,
            &FastTrackDetector::new(rate),
            &rate,
            "ft",
            "bernoulli:0.3:11",
        );
        assert_incremental_matches_cold(
            &format!("{name}/su/bernoulli0.3"),
            &trace,
            &FreshnessDetector::new(rate),
            &rate,
            "su",
            "bernoulli:0.3:11",
        );
        assert_incremental_matches_cold(
            &format!("{name}/so/bernoulli0.3"),
            &trace,
            &OrderedListDetector::new(rate),
            &rate,
            "so",
            "bernoulli:0.3:11",
        );
    }
}

#[test]
fn never_sampler_incremental_matches_exactly() {
    for (name, trace) in workload_matrix(160, &[3]) {
        assert_incremental_matches_cold(
            &format!("{name}/so/never"),
            &trace,
            &OrderedListDetector::new(NeverSampler::new()),
            &NeverSampler::new(),
            "so",
            "never",
        );
    }
}

/// A deterministic racy workload emitted incrementally through one
/// builder, so a prefix build and a full build share id assignment —
/// and therefore, after v2 encoding, share segment bytes.
fn emitted(events: usize) -> Trace {
    let mut b = TraceBuilder::new();
    let vars: Vec<_> = (0..5).map(|v| b.var(&format!("x{v}"))).collect();
    let locks: Vec<_> = (0..3).map(|l| b.lock(&format!("l{l}"))).collect();
    let mut emitted = 0usize;
    let mut step = 0usize;
    while emitted < events {
        let t = (step % 4) as u32;
        match step % 7 {
            0 => {
                b.acquire(t, locks[step % 3]).release(t, locks[step % 3]);
                emitted += 2;
            }
            1 | 4 => {
                b.write(t, vars[step % 5]);
                emitted += 1;
            }
            _ => {
                b.read(t, vars[(step * 3) % 5]);
                emitted += 1;
            }
        }
        step += 1;
    }
    b.build()
}

/// The real append workflow, across two distinct files: analyze a
/// short trace, keep its sidecar, then analyze a longer trace whose
/// encoding shares the short one's full segments byte-for-byte. Every
/// full segment of the short file must be reused.
#[test]
fn sidecar_survives_a_real_file_append() {
    let short = emitted(100);
    let long = emitted(180);
    let short_bytes = v2_bytes(&short, EVENTS_PER_SEGMENT);
    let long_bytes = v2_bytes(&long, EVENTS_PER_SEGMENT);

    let detector = OrderedListDetector::new(BernoulliSampler::new(0.5, 7));
    let sampler = BernoulliSampler::new(0.5, 7);
    for jobs in [1, 2] {
        let cfg = config("so", "bernoulli:0.5:7", jobs);
        let first = analyze_segments_cached(
            &mut open(&short_bytes),
            &detector,
            &sampler,
            jobs,
            &cfg,
            None,
        )
        .unwrap();

        // Count how many of the short file's segments survive in the
        // long file byte-identically (the tail segment is partial and
        // gets rewritten by the append).
        let long_file = open(&long_bytes);
        let shared = open(&short_bytes)
            .metas()
            .iter()
            .zip(long_file.metas())
            .take_while(|(a, b)| a == b)
            .count();
        assert!(shared > 0, "append must leave a shared segment prefix");

        let second = analyze_segments_cached(
            &mut open(&long_bytes),
            &detector,
            &sampler,
            jobs,
            &cfg,
            Some(&first.cache),
        )
        .unwrap();
        assert_eq!(second.reused_segments, shared, "jobs={jobs}");

        let cold = analyze_segments(&mut open(&long_bytes), &detector, &sampler, jobs).unwrap();
        assert_eq!(second.analysis.reports, cold.reports, "jobs={jobs}");
        assert_eq!(second.analysis.counters, cold.counters, "jobs={jobs}");
    }
}

/// Any difference in the configuration fingerprint — engine, sampler
/// identity, segment options, payload version, or worker count — must
/// reject the cache outright, never partially reuse it.
#[test]
fn changed_fingerprint_rejects_the_whole_cache() {
    let trace = emitted(120);
    let bytes = v2_bytes(&trace, EVENTS_PER_SEGMENT);
    let detector = FreshnessDetector::new(BernoulliSampler::new(0.4, 9));
    let sampler = BernoulliSampler::new(0.4, 9);
    let jobs = 2;
    let cfg = config("su", "bernoulli:0.4:9", jobs);
    let cold =
        analyze_segments_cached(&mut open(&bytes), &detector, &sampler, jobs, &cfg, None).unwrap();
    assert!(cold.total_segments > 1);

    let mutations: Vec<(&str, CacheConfig)> = vec![
        (
            "engine",
            CacheConfig {
                engine: "ft".into(),
                ..cfg.clone()
            },
        ),
        (
            "sampler",
            CacheConfig {
                sampler: "bernoulli:0.4:10".into(),
                ..cfg.clone()
            },
        ),
        (
            "options",
            CacheConfig {
                options: "events_per_segment=9".into(),
                ..cfg.clone()
            },
        ),
        (
            "state_version",
            CacheConfig {
                state_version: CACHE_STATE_VERSION + 1,
                ..cfg.clone()
            },
        ),
        (
            "jobs",
            CacheConfig {
                jobs: 1,
                ..cfg.clone()
            },
        ),
    ];
    for (what, wrong) in mutations {
        let run = analyze_segments_cached(
            &mut open(&bytes),
            &detector,
            &sampler,
            jobs,
            &wrong,
            Some(&cold.cache),
        )
        .unwrap();
        assert_eq!(
            run.reused_segments, 0,
            "{what} change must reject the cache"
        );
        assert_eq!(run.analysis.reports, cold.analysis.reports, "{what}");
        assert_eq!(run.analysis.counters, cold.analysis.counters, "{what}");
    }

    // Same config, different `jobs` argument: the jobs field in the
    // fingerprint is authoritative, and the mismatch rejects too.
    let run = analyze_segments_cached(
        &mut open(&bytes),
        &detector,
        &sampler,
        1,
        &CacheConfig {
            jobs: 1,
            ..cfg.clone()
        },
        Some(&cold.cache),
    )
    .unwrap();
    assert_eq!(
        run.reused_segments, 0,
        "jobs=2 sidecar must not seed a jobs=1 run"
    );
    assert_eq!(run.analysis.reports, cold.analysis.reports);
    assert_eq!(run.analysis.counters, cold.analysis.counters);
}

/// Flip every bit... is overkill at this layer (the trace crate pins
/// byte-level rejection); here every *byte* of the encoded sidecar is
/// flipped, and each mutant either fails to decode or — if it decodes —
/// analyzes to the exact cold output, proving a corrupt sidecar can
/// demote but never distort.
#[test]
fn corrupt_sidecar_never_distorts_the_analysis() {
    let trace = emitted(96);
    let bytes = v2_bytes(&trace, EVENTS_PER_SEGMENT);
    let detector = FastTrackDetector::new(BernoulliSampler::new(0.6, 5));
    let sampler = BernoulliSampler::new(0.6, 5);
    let jobs = 1;
    let cfg = config("ft", "bernoulli:0.6:5", jobs);
    let cold =
        analyze_segments_cached(&mut open(&bytes), &detector, &sampler, jobs, &cfg, None).unwrap();
    let encoded = cold.cache.encode();

    let mut decoded_ok = 0usize;
    for pos in 0..encoded.len() {
        let mut mutant = encoded.clone();
        mutant[pos] ^= 0x01;
        let Ok(prior) = AnalysisCache::decode(&mutant) else {
            continue;
        };
        decoded_ok += 1;
        let run = analyze_segments_cached(
            &mut open(&bytes),
            &detector,
            &sampler,
            jobs,
            &cfg,
            Some(&prior),
        )
        .unwrap();
        assert_eq!(run.analysis.reports, cold.analysis.reports, "flip at {pos}");
        assert_eq!(
            run.analysis.counters, cold.analysis.counters,
            "flip at {pos}"
        );
    }
    // CRC framing makes surviving decodes rare; the loop above is the
    // contract either way.
    assert!(decoded_ok <= encoded.len() / 8, "CRC framing looks broken");

    for cut in 0..encoded.len() {
        assert!(
            AnalysisCache::decode(&encoded[..cut]).is_err(),
            "truncation at {cut} must be rejected"
        );
    }
}

/// Corrupting the *trace file* behind a sidecar: the CRC re-hash ends
/// the reusable prefix before the damaged segment, and the replay then
/// reports exactly the error a cold run reports — the cache never
/// masks corruption.
#[test]
fn corrupt_segment_is_never_reused() {
    let trace = emitted(120);
    let bytes = v2_bytes(&trace, EVENTS_PER_SEGMENT);
    let detector = DjitDetector::new(AlwaysSampler::new());
    let sampler = AlwaysSampler::new();
    let jobs = 2;
    let cfg = config("djit", "always", jobs);
    let cold =
        analyze_segments_cached(&mut open(&bytes), &detector, &sampler, jobs, &cfg, None).unwrap();

    let metas: Vec<_> = open(&bytes).metas().to_vec();
    for (k, meta) in metas.iter().enumerate() {
        let mut corrupt = bytes.clone();
        let target = meta.offset as usize + meta.byte_len as usize / 2;
        corrupt[target] ^= 0xFF;

        let cold_err = match analyze_segments(&mut open(&corrupt), &detector, &sampler, jobs) {
            Err(e) => e.to_string(),
            // The flip can cancel out in a CRC-colliding way only if it
            // decodes identically, which a 1-byte xor cannot; but the
            // footer CRC may catch it at open() — skip those.
            Ok(_) => panic!("segment {k}: corruption went unnoticed by the cold run"),
        };
        assert!(cold_err.contains("checksum"), "segment {k}: {cold_err}");

        let warm_err = analyze_segments_cached(
            &mut open(&corrupt),
            &detector,
            &sampler,
            jobs,
            &cfg,
            Some(&cold.cache),
        )
        .expect_err("corrupt segment must fail the warm run too");
        assert_eq!(
            warm_err.to_string(),
            cold_err,
            "segment {k}: warm run must surface the cold run's error"
        );
    }
}
