//! Differential verification of the bounded-memory [`StreamingOracle`]
//! against the materializing [`HbOracle`] ground truth.
//!
//! The contract under test (see `stream_oracle.rs` module docs):
//!
//! * racy **events** are exact for *every* window size, including `0`;
//! * racy **pairs** are a sound subset, and exactly
//!   [`HbOracle::racy_pairs`] (same order) when the window covers the
//!   trace;
//! * reservoir pairs are exact checks over a uniformly sampled pair
//!   population, deterministic in the seed;
//! * the detector engines' reports stay consistent with the streamed
//!   ground truth, closing the loop `engines ↔ StreamingOracle ↔
//!   HbOracle`.
//!
//! The structured matrix covers every workload pattern × seeds ×
//! samplers × window sizes; the proptests fuzz raw fuel through the
//! shared trace interpreter with randomized windows and reservoirs.

use freshtrack_core::{Detector, DjitDetector, HbOracle, OracleConfig, StreamingOracle};
use freshtrack_sampling::{AlwaysSampler, BernoulliSampler, NeverSampler, PeriodicSampler};
use freshtrack_testutil::{
    assert_streaming_oracle_agreement, trace_from_fuel, workload_matrix, ALL_PATTERNS,
};
use freshtrack_trace::{Trace, TraceBuilder};
use proptest::prelude::*;

fn windowed(window: usize) -> OracleConfig {
    OracleConfig {
        window,
        ..OracleConfig::default()
    }
}

/// Window sizes spanning the interesting regimes: no window at all,
/// pathologically tiny, partial, and covering.
const WINDOWS: [usize; 5] = [0, 1, 4, 64, usize::MAX];

/// The structured differential matrix: every pattern × seed × sampler ×
/// window size, streamed vs materialized.
#[test]
fn matrix_agreement_across_patterns_samplers_and_windows() {
    for (label, trace) in workload_matrix(240, &[1, 2]) {
        for window in WINDOWS {
            assert_streaming_oracle_agreement(
                &format!("{label}/always"),
                &trace,
                AlwaysSampler::new(),
                windowed(window),
            );
            assert_streaming_oracle_agreement(
                &format!("{label}/bernoulli"),
                &trace,
                BernoulliSampler::new(0.5, 7),
                windowed(window),
            );
            assert_streaming_oracle_agreement(
                &format!("{label}/periodic"),
                &trace,
                PeriodicSampler::new(0.4, 16, 11),
                windowed(window),
            );
        }
    }
}

/// A sampler that admits nothing produces an empty outcome everywhere.
#[test]
fn never_sampler_sees_no_races() {
    for (label, trace) in workload_matrix(240, &[1]) {
        let outcome = assert_streaming_oracle_agreement(
            &label,
            &trace,
            NeverSampler::new(),
            windowed(usize::MAX),
        );
        assert!(outcome.racy_events.is_empty(), "[{label}] never-sampled");
        assert_eq!(outcome.stats.sampled_accesses, 0);
    }
}

/// Engines × streaming oracle: every race an engine reports is racy per
/// the streamed ground truth, and the first report is the streamed
/// oracle's first racy event — the same contract
/// `assert_oracle_agreement` pins against [`HbOracle`], closing the
/// triangle.
#[test]
fn engine_reports_agree_with_streamed_ground_truth() {
    for (label, trace) in workload_matrix(240, &[1, 2]) {
        let sampler = BernoulliSampler::new(0.6, 3);
        let reports = DjitDetector::new(sampler).run(&trace);
        let outcome =
            assert_streaming_oracle_agreement(&label, &trace, sampler, windowed(usize::MAX));
        let racy = outcome.racy_ids();
        for report in &reports {
            assert!(
                racy.contains(&report.event),
                "[{label}] engine reported non-racy event {}",
                report.event
            );
        }
        assert_eq!(
            reports.first().map(|r| r.event),
            racy.first().copied(),
            "[{label}] first engine report vs streamed oracle"
        );
    }
}

/// Reservoir mode: pairs are a sound subset (checked by the shared
/// assertion), selection is deterministic in the seed, and differing
/// seeds are allowed to retain different populations.
#[test]
fn reservoir_is_sound_and_deterministic() {
    let trace = freshtrack_testutil::conformance_workload(ALL_PATTERNS[0], 9, 400);
    let config = OracleConfig {
        window: 2,
        reservoir: 16,
        seed: 42,
    };
    let a = assert_streaming_oracle_agreement("reservoir/a", &trace, AlwaysSampler::new(), config);
    let b = assert_streaming_oracle_agreement("reservoir/b", &trace, AlwaysSampler::new(), config);
    assert_eq!(a, b, "same seed must reproduce the outcome exactly");
    assert!(
        a.stats.reservoir_checks > 0,
        "a 400-event workload must exercise the reservoir"
    );
}

/// A tiny window forces evictions, yet racy events stay exact and any
/// checkpoint-detected races are visible in the stats.
#[test]
fn tiny_window_summarizes_without_losing_events() {
    // Thread 0 writes x twice (only the first stays windowed), then
    // thread 1 writes x unsynchronized: the race with the evicted
    // write is found via the clock checkpoint.
    let mut b = TraceBuilder::new();
    let x = b.var("x");
    let y = b.var("y");
    b.write(0, x);
    b.write(0, y);
    b.write(0, x);
    b.write(1, x);
    let trace = b.build();
    let outcome =
        assert_streaming_oracle_agreement("tiny", &trace, AlwaysSampler::new(), windowed(1));
    assert_eq!(outcome.racy_events.len(), 1, "the cross-thread write races");
    assert!(outcome.stats.evictions > 0, "window 1 must evict");
    // Both earlier writes race with the later one; only the windowed
    // one can be reported as a pair.
    assert_eq!(outcome.window_pairs.len(), 1);
    assert_eq!(
        outcome.stats.summarized_races, 0,
        "windowed pair found it first"
    );
}

/// Window 0 keeps no pairs at all: every race is checkpoint-detected,
/// racy events still exact.
#[test]
fn window_zero_is_checkpoint_only() {
    let mut b = TraceBuilder::new();
    let x = b.var("x");
    b.write(0, x);
    b.write(1, x);
    b.read(2, x);
    let trace = b.build();
    let outcome =
        assert_streaming_oracle_agreement("w0", &trace, AlwaysSampler::new(), windowed(0));
    assert_eq!(outcome.racy_events.len(), 2);
    assert!(outcome.window_pairs.is_empty(), "nothing is ever windowed");
    assert_eq!(outcome.stats.summarized_races, 2);
}

/// Synchronized accesses stay race-free through the streamed sync plane
/// (acquire = join, release = publish + increment).
#[test]
fn lock_discipline_orders_accesses() {
    let mut b = TraceBuilder::new();
    let x = b.var("x");
    let l = b.lock("l");
    b.acquire(0, l).write(0, x).release(0, l);
    b.acquire(1, l).write(1, x).release(1, l);
    let trace = b.build();
    for window in WINDOWS {
        let outcome = assert_streaming_oracle_agreement(
            "locked",
            &trace,
            AlwaysSampler::new(),
            windowed(window),
        );
        assert!(outcome.racy_events.is_empty(), "w={window} lock-ordered");
    }
}

/// Bounded memory in practice: with a fixed window, quadrupling the
/// trace length leaves the retained state within noise (it depends on
/// threads × vars × window, never on N).
#[test]
fn state_footprint_is_independent_of_trace_length() {
    let run = |events: usize| {
        let trace = freshtrack_testutil::conformance_workload(ALL_PATTERNS[0], 3, events);
        StreamingOracle::new(AlwaysSampler::new(), windowed(8))
            .run_source(&mut trace.source())
            .expect("valid trace")
            .stats
    };
    let small = run(500);
    let large = run(2000);
    assert!(
        large.events > 3 * small.events,
        "workload must actually grow"
    );
    assert!(
        large.state_bytes <= small.state_bytes * 2,
        "state must not scale with N: {} -> {}",
        small.state_bytes,
        large.state_bytes
    );
    assert!(large.peak_window_len <= 8, "window cap respected");
}

/// `feed_source` + `finish` across chunked sources equals one
/// `run_source` over the whole trace: the oracle is resumable at any
/// split point, the property segment-checkpointed analysis relies on.
#[test]
fn chunked_feeding_matches_single_pass() {
    let trace = freshtrack_testutil::conformance_workload(ALL_PATTERNS[2], 5, 300);
    let whole = StreamingOracle::new(AlwaysSampler::new(), windowed(16))
        .run_source(&mut trace.source())
        .expect("valid trace");
    let mut chunked = StreamingOracle::new(AlwaysSampler::new(), windowed(16));
    for (id, event) in trace.iter() {
        chunked.on_event(id, event);
    }
    assert_eq!(whole, chunked.finish());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Fuzzed agreement: random fuel, random window — racy events exact,
    /// pairs sound, and exact whenever the window happens to cover.
    #[test]
    fn fuzzed_agreement_under_random_windows(
        fuel in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..200),
        window_idx in 0usize..7,
        rate_raw in any::<u8>(),
        seed in any::<u64>(),
    ) {
        let window = [0usize, 1, 2, 3, 8, 32, usize::MAX][window_idx];
        let trace = trace_from_fuel(&fuel, 4, 3, 3);
        assert_streaming_oracle_agreement(
            "fuzz",
            &trace,
            BernoulliSampler::new(f64::from(rate_raw) / 255.0, seed),
            windowed(window),
        );
    }

    /// Fuzzed reservoir mode on top of a tiny window: the shared
    /// assertion checks soundness of every reported pair.
    #[test]
    fn fuzzed_reservoir_soundness(
        fuel in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..200),
        reservoir in 1usize..24,
        seed in any::<u64>(),
    ) {
        let trace = trace_from_fuel(&fuel, 4, 3, 3);
        assert_streaming_oracle_agreement(
            "fuzz-reservoir",
            &trace,
            AlwaysSampler::new(),
            OracleConfig { window: 1, reservoir, seed },
        );
    }

    /// The windowed-pair subset relation holds monotonically: a larger
    /// window never reports fewer pairs, and both stay subsets of the
    /// ground truth (transitively checked by the shared assertion).
    #[test]
    fn window_growth_is_monotone(
        fuel in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..160),
        small in 0usize..6,
        extra in 1usize..32,
    ) {
        let trace = trace_from_fuel(&fuel, 4, 3, 3);
        let narrow = assert_streaming_oracle_agreement(
            "mono/narrow", &trace, AlwaysSampler::new(), windowed(small));
        let wide = assert_streaming_oracle_agreement(
            "mono/wide", &trace, AlwaysSampler::new(), windowed(small + extra));
        let wide_set: std::collections::HashSet<_> =
            wide.window_pairs.iter().copied().collect();
        for pair in &narrow.window_pairs {
            prop_assert!(
                wide_set.contains(pair),
                "pair {pair:?} lost when the window grew"
            );
        }
        prop_assert_eq!(narrow.racy_ids(), wide.racy_ids());
    }
}

/// The doc-level example contract, pinned: a racy two-write trace is
/// reported identically by both oracles at every window size.
#[test]
fn minimal_example_matches_hb_oracle() {
    let mut b = TraceBuilder::new();
    let x = b.var("x");
    b.write(0, x);
    b.write(1, x);
    let trace: Trace = b.build();
    let oracle = HbOracle::new(&trace);
    let mask = HbOracle::sample_mask(&trace, AlwaysSampler::new());
    assert_eq!(oracle.racy_events(&mask).len(), 1);
    for window in WINDOWS {
        assert_streaming_oracle_agreement("min", &trace, AlwaysSampler::new(), windowed(window));
    }
}
