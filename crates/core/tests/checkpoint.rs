//! Checkpoint-resume suite: export a detector mid-stream, import into a
//! fresh instance of the same configuration, continue — the combined
//! report stream must be identical to an uninterrupted run, for every
//! engine × sampler family and every cut point.
//!
//! Counters continue exactly too, `deep_copies` included: the SO sync
//! engine records live thread↔lock aliases as checkpoint marks and
//! rebuilds them on import (see the module docs of
//! `freshtrack_core::CheckpointState`), so even the sharing-dependent
//! counter picks up exactly where the exporter left off — invariant 11
//! in `ARCHITECTURE.md`. Every field is pinned.

use freshtrack_clock::wire;
use freshtrack_core::{
    apply_delta, encode_delta, CheckpointState, Counters, Detector, DjitDetector,
    FastTrackDetector, FreshnessDetector, OrderedListDetector, OrderedSyncEngine, SplitDetector,
};
use freshtrack_sampling::{AlwaysSampler, BernoulliSampler};
use freshtrack_testutil::{trace_from_fuel, workload_matrix};
use freshtrack_trace::{EventId, Trace, TraceBuilder};
use proptest::prelude::*;

/// Every `Counters` field, the sharing-dependent `deep_copies`
/// included — alias marks in the SO checkpoint make resume exact.
fn stable_fields(c: &Counters) -> [u64; 18] {
    [
        c.events,
        c.reads,
        c.writes,
        c.sampled_accesses,
        c.acquires,
        c.releases,
        c.acquires_skipped,
        c.acquires_processed,
        c.releases_skipped,
        c.releases_processed,
        c.shallow_copies,
        c.deep_copies,
        c.local_increments,
        c.entries_traversed,
        c.entries_saved,
        c.vc_ops,
        c.race_checks,
        c.races,
    ]
}

fn assert_resume_matches<D>(label: &str, trace: &Trace, make: &dyn Fn() -> D)
where
    D: Detector + CheckpointState,
{
    let mut full = make();
    let expected = full.run(trace);
    let expected_counters = *full.counters();

    let n = trace.len();
    let mut chain_prev: Option<Vec<u8>> = None;
    for cut in [0, n / 3, n / 2, 2 * n / 3, n] {
        let mut first = make();
        let mut reports = Vec::new();
        for (id, event) in trace.iter().take(cut) {
            reports.extend(first.process(id, event));
        }
        let mut blob = Vec::new();
        first.export_state(&mut blob);

        // Delta form: reconstruct this cut's checkpoint from the
        // previous cut's bytes through the varint-delta codec (the
        // encoding `analyze_segments` ships between wave segments),
        // and resume from the *reconstruction* so the whole resume
        // path below also certifies the delta round-trip.
        let reconstructed = match &chain_prev {
            None => blob.clone(),
            Some(prev) => {
                let delta = encode_delta(prev, &blob);
                apply_delta(prev, &delta).expect("chain delta must apply to its own base")
            }
        };
        assert_eq!(
            reconstructed, blob,
            "[{label}] cut={cut}: delta chain drifted from the direct export"
        );
        chain_prev = Some(blob.clone());

        let mut resumed = make();
        resumed
            .import_state(&reconstructed)
            .expect("a just-exported checkpoint must import");

        // Export is deterministic: export → import → export is
        // byte-idempotent.
        let mut blob2 = Vec::new();
        resumed.export_state(&mut blob2);
        assert_eq!(blob, blob2, "[{label}] cut={cut}: re-export drifted");

        for (id, event) in trace.iter().skip(cut) {
            reports.extend(resumed.process(id, event));
        }
        assert_eq!(
            reports, expected,
            "[{label}] cut={cut}: resumed reports diverged"
        );
        assert_eq!(
            stable_fields(resumed.counters()),
            stable_fields(&expected_counters),
            "[{label}] cut={cut}: resumed counters diverged"
        );
    }
}

fn assert_all_engines_resume(label: &str, trace: &Trace) {
    let rate = BernoulliSampler::new(0.3, 17);
    assert_resume_matches(&format!("{label}/djit"), trace, &|| {
        DjitDetector::new(AlwaysSampler::new())
    });
    assert_resume_matches(&format!("{label}/ft"), trace, &|| {
        FastTrackDetector::new(BernoulliSampler::new(1.0, 42))
    });
    assert_resume_matches(&format!("{label}/su"), trace, &|| {
        FreshnessDetector::new(rate)
    });
    assert_resume_matches(&format!("{label}/so"), trace, &|| {
        OrderedListDetector::new(rate)
    });
    assert_resume_matches(&format!("{label}/so-noopt"), trace, &|| {
        OrderedListDetector::with_options(rate, false)
    });
}

#[test]
fn every_engine_resumes_identically_across_workloads() {
    for (name, trace) in workload_matrix(240, &[5]) {
        assert_all_engines_resume(&name, &trace);
    }
}

#[test]
fn every_engine_resumes_identically_on_fuel_traces() {
    let fuel: &[(u8, u8, u8)] = &[
        (0, 0, 0),
        (1, 0, 1),
        (2, 1, 0),
        (0, 1, 1),
        (3, 0, 2),
        (1, 2, 3),
        (4, 1, 2),
        (0, 0, 4),
    ];
    let trace = trace_from_fuel(fuel, 5, 3, 5);
    assert_all_engines_resume("fuel", &trace);
}

#[test]
fn run_source_from_shifts_report_ids_by_the_resume_offset() {
    let mut b = TraceBuilder::new();
    let x = b.var("x");
    let y = b.var("y");
    b.write(0, x).write(1, x).write(0, y).write(1, y);
    let trace = b.build();

    let base = DjitDetector::new(AlwaysSampler::new())
        .run_source(&mut trace.source())
        .unwrap();
    let shifted = DjitDetector::new(AlwaysSampler::new())
        .run_source_from(&mut trace.source(), 1000)
        .unwrap();
    assert_eq!(base.len(), shifted.len());
    assert!(!base.is_empty());
    for (a, b) in base.iter().zip(&shifted) {
        assert_eq!(b.event, EventId::new(a.event.as_u64() + 1000));
        assert_eq!((b.tid, b.var, b.access), (a.tid, a.var, a.access));
    }
}

#[test]
fn truncated_checkpoints_import_as_clean_errors() {
    // A mid-run SO checkpoint exercises every wire shape: ordered
    // lists, freshness clocks, optional lock snapshots, RelAfter_S
    // bits, counters.
    let (_, trace) = workload_matrix(120, &[9]).remove(0);
    let mut det = OrderedListDetector::new(BernoulliSampler::new(0.5, 3));
    det.run(&trace);
    let mut blob = Vec::new();
    det.export_state(&mut blob);

    for cut in 0..blob.len() {
        let mut fresh = OrderedListDetector::new(BernoulliSampler::new(0.5, 3));
        assert!(
            fresh.import_state(&blob[..cut]).is_err(),
            "strict prefix of len {cut} (of {}) must not import",
            blob.len()
        );
    }

    // Trailing garbage is rejected too, before any state is replaced.
    let mut padded = blob.clone();
    padded.push(0);
    let mut fresh = OrderedListDetector::new(BernoulliSampler::new(0.5, 3));
    let err = fresh.import_state(&padded).unwrap_err();
    assert!(err.to_string().contains("malformed checkpoint"), "{err}");
}

#[test]
fn non_epoch_engines_reject_relafter_bits() {
    // Hand-assemble checkpoints whose RelAfter_S section claims one
    // pending bit — only SU/SO carry those bits, so the vector-clock
    // detectors must refuse rather than silently drop sampling state.
    fn blob_with_one_bit<D: SplitDetector>(det: &D) -> Vec<u8>
    where
        D::Sync: CheckpointState,
        D::Access: CheckpointState,
    {
        let mut sync_bytes = Vec::new();
        det.split_sync().export_state(&mut sync_bytes);
        let mut access_bytes = Vec::new();
        det.split_access().export_state(&mut access_bytes);

        let mut blob = Vec::new();
        wire::put_varint(&mut blob, sync_bytes.len() as u64);
        blob.extend_from_slice(&sync_bytes);
        wire::put_varint(&mut blob, access_bytes.len() as u64);
        blob.extend_from_slice(&access_bytes);
        wire::put_varint(&mut blob, 1);
        wire::put_bool(&mut blob, true);
        for _ in 0..18 {
            wire::put_varint(&mut blob, 0);
        }
        blob
    }

    let mut djit = DjitDetector::new(AlwaysSampler::new());
    let blob = blob_with_one_bit(&djit);
    let err = djit.import_state(&blob).unwrap_err();
    assert!(err.to_string().contains("RelAfter_S"), "{err}");

    let mut ft = FastTrackDetector::new(AlwaysSampler::new());
    let blob = blob_with_one_bit(&ft);
    let err = ft.import_state(&blob).unwrap_err();
    assert!(err.to_string().contains("RelAfter_S"), "{err}");
}

/// Feeds `bytes` (a possibly-corrupted checkpoint) into a fresh
/// detector and asserts the clean-failure contract: either import
/// rejects with an error, or — when the corruption happens to decode as
/// a valid state — the accepted state is *canonical* (its re-export is
/// byte-idempotent through another import) and the detector keeps
/// processing a real trace without panicking. What is ruled out is the
/// middle ground: an `Ok` import holding state that later misbehaves.
fn assert_import_fails_cleanly<D>(label: &str, make: &dyn Fn() -> D, trace: &Trace, bytes: &[u8])
where
    D: Detector + CheckpointState,
{
    let mut det = make();
    if det.import_state(bytes).is_err() {
        return; // clean rejection — no state was replaced
    }
    let mut re = Vec::new();
    det.export_state(&mut re);
    let mut second = make();
    second
        .import_state(&re)
        .unwrap_or_else(|e| panic!("[{label}] re-export of an accepted import failed: {e}"));
    let mut re2 = Vec::new();
    second.export_state(&mut re2);
    assert_eq!(
        re, re2,
        "[{label}] accepted import produced a non-canonical state"
    );
    det.run(trace); // an accepted state must keep working (no panic)
}

/// Corrupts `blob` per `flips` (position, xor-mask pairs; masks are
/// forced nonzero so every flip changes its byte) and checks the
/// clean-failure contract; then checks every strict prefix in the same
/// way via `trunc`.
fn assert_corruption_handled<D>(
    label: &str,
    make: &dyn Fn() -> D,
    trace: &Trace,
    flips: &[(u16, u8)],
    trunc: u16,
) where
    D: Detector + CheckpointState,
{
    let mut det = make();
    det.run(trace);
    let mut blob = Vec::new();
    det.export_state(&mut blob);
    assert!(!blob.is_empty(), "[{label}] export produced no bytes");

    let mut corrupted = blob.clone();
    for &(pos, mask) in flips {
        let i = pos as usize % corrupted.len();
        corrupted[i] ^= mask | 1;
    }
    assert_import_fails_cleanly(label, make, trace, &corrupted);

    // Truncation can never be valid: every section is length-prefixed,
    // so a strict prefix must be rejected outright.
    let cut = trunc as usize % blob.len();
    let mut fresh = make();
    assert!(
        fresh.import_state(&blob[..cut]).is_err(),
        "[{label}] strict prefix of len {cut} (of {}) imported",
        blob.len()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fuzzed corruption: flip and truncate arbitrary bytes of exported
    /// checkpoint blobs for every engine — import fails cleanly (no
    /// panic, no silent wrong state) in every case.
    #[test]
    fn corrupted_checkpoints_fail_cleanly_for_every_engine(
        fuel in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 20..80),
        flips in prop::collection::vec((any::<u16>(), any::<u8>()), 1..8),
        trunc in any::<u16>(),
    ) {
        let trace = trace_from_fuel(&fuel, 4, 3, 3);
        assert_corruption_handled(
            "djit", &|| DjitDetector::new(AlwaysSampler::new()), &trace, &flips, trunc);
        assert_corruption_handled(
            "ft", &|| FastTrackDetector::new(BernoulliSampler::new(1.0, 42)),
            &trace, &flips, trunc);
        assert_corruption_handled(
            "su", &|| FreshnessDetector::new(BernoulliSampler::new(0.5, 17)),
            &trace, &flips, trunc);
        assert_corruption_handled(
            "so", &|| OrderedListDetector::new(BernoulliSampler::new(0.5, 17)),
            &trace, &flips, trunc);
        assert_corruption_handled(
            "so-noopt",
            &|| OrderedListDetector::with_options(BernoulliSampler::new(0.5, 17), false),
            &trace, &flips, trunc);
    }
}

#[test]
fn sync_plane_delta_chain_matches_direct_exports() {
    // Exactly what `analyze_segments` ships between the segments of a
    // wave: the first boundary as a full sync-plane export, every later
    // boundary as a varint delta against the previous one. Walking the
    // chain must reconstruct each boundary byte-identically, and an
    // engine seeded from a reconstruction must re-export those same
    // bytes (idempotence through the delta form).
    let (_, trace) = workload_matrix(240, &[5]).remove(0);
    let mut det = OrderedListDetector::new(BernoulliSampler::new(0.5, 17));
    let mut chain: Option<Vec<u8>> = None;
    let mut boundaries = 0usize;
    for (i, (id, event)) in trace.iter().enumerate() {
        det.process(id, event);
        if (i + 1) % 24 != 0 {
            continue;
        }
        boundaries += 1;
        let mut direct = Vec::new();
        det.split_sync().export_state(&mut direct);
        let reconstructed = match &chain {
            None => direct.clone(),
            Some(prev) => {
                let delta = encode_delta(prev, &direct);
                apply_delta(prev, &delta).expect("chain delta must apply to its own base")
            }
        };
        assert_eq!(
            reconstructed, direct,
            "boundary after event {i}: chain drifted"
        );

        let mut seeded = OrderedSyncEngine::new(true);
        seeded
            .import_state(&reconstructed)
            .expect("a reconstructed sync export must import");
        let mut re = Vec::new();
        seeded.export_state(&mut re);
        assert_eq!(
            re, direct,
            "boundary after event {i}: seeded re-export drifted"
        );
        chain = Some(direct);
    }
    assert!(boundaries >= 5, "workload too short to exercise the chain");
}

#[test]
fn exporting_a_fresh_detector_equals_the_empty_state() {
    // Importing a fresh export into a used detector resets it.
    let mut fresh_blob = Vec::new();
    FreshnessDetector::new(AlwaysSampler::new()).export_state(&mut fresh_blob);

    let (_, trace) = workload_matrix(100, &[2]).remove(0);
    let mut used = FreshnessDetector::new(AlwaysSampler::new());
    let expected = used.run(&trace);
    used.import_state(&fresh_blob).unwrap();
    assert_eq!(used.counters().events, 0);
    assert_eq!(used.run(&trace), expected, "reset detector must re-derive");
}
