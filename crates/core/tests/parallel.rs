//! Differential suite for the checkpointed parallel analyzer.
//!
//! `analyze_segments` must be **byte-identical** to a sequential
//! `Detector::run` over the same trace — reports *and* every `Counters`
//! field — for every engine, sampler, segment size, and job count. This
//! is the tentpole invariant of the segmented `.ftb` v2 store: the
//! parallel path is an optimization, never a different analysis.

use std::io::Cursor;

use freshtrack_core::{
    analyze_segments, CheckpointState, Detector, DjitDetector, FastTrackDetector,
    FreshnessDetector, OrderedListDetector, SplitDetector,
};
use freshtrack_sampling::{AlwaysSampler, BernoulliSampler, NeverSampler, Sampler};
use freshtrack_testutil::{trace_from_fuel, workload_matrix};
use freshtrack_trace::{
    write_source_binary_v2, write_trace_binary_v2, EventSource, SegmentOptions, SegmentedTraceFile,
    SourceError, Trace, TraceBuilder, Validated,
};

fn v2_bytes(trace: &Trace, events_per_segment: usize) -> Vec<u8> {
    let mut bytes = Vec::new();
    write_trace_binary_v2(trace, &mut bytes, &SegmentOptions { events_per_segment })
        .expect("in-memory v2 encode cannot fail");
    bytes
}

/// Asserts the full equivalence contract for one (trace, engine,
/// sampler) cell across segment sizes and job counts.
fn assert_parallel_matches_sequential<D, S>(label: &str, trace: &Trace, detector: &D, sampler: &S)
where
    D: SplitDetector,
    D::Sync: CheckpointState,
    D::Access: CheckpointState,
    S: Sampler + Clone + Send,
{
    let mut seq = detector.clone();
    let expected_reports = seq.run(trace);
    let expected_counters = *seq.counters();

    for events_per_segment in [1, 7, 64, trace.len().max(1)] {
        let bytes = v2_bytes(trace, events_per_segment);
        for jobs in [1, 2, 3] {
            let mut file = SegmentedTraceFile::open(Cursor::new(bytes.as_slice()))
                .expect("freshly written v2 file must open");
            let analysis = analyze_segments(&mut file, detector, sampler, jobs)
                .expect("well-formed traces must analyze");
            assert_eq!(
                analysis.reports, expected_reports,
                "[{label}] seg={events_per_segment} jobs={jobs}: reports diverged"
            );
            assert_eq!(
                analysis.counters, expected_counters,
                "[{label}] seg={events_per_segment} jobs={jobs}: counters diverged"
            );
            assert_eq!(
                analysis.threads as usize,
                trace.thread_count(),
                "[{label}] seg={events_per_segment} jobs={jobs}: thread count diverged"
            );
            assert_eq!(analysis.lock_names.len(), trace.lock_count());
            assert_eq!(analysis.var_names.len(), trace.var_count());
        }
    }
}

#[test]
fn parallel_matches_sequential_across_engines_and_samplers() {
    for (name, trace) in workload_matrix(300, &[1]) {
        let rate = BernoulliSampler::new(0.3, 11);
        assert_parallel_matches_sequential(
            &format!("{name}/djit/always"),
            &trace,
            &DjitDetector::new(AlwaysSampler::new()),
            &AlwaysSampler::new(),
        );
        assert_parallel_matches_sequential(
            &format!("{name}/ft/bernoulli1.0"),
            &trace,
            &FastTrackDetector::new(BernoulliSampler::new(1.0, 42)),
            &BernoulliSampler::new(1.0, 42),
        );
        assert_parallel_matches_sequential(
            &format!("{name}/su/bernoulli0.3"),
            &trace,
            &FreshnessDetector::new(rate),
            &rate,
        );
        assert_parallel_matches_sequential(
            &format!("{name}/so/bernoulli0.3"),
            &trace,
            &OrderedListDetector::new(rate),
            &rate,
        );
        assert_parallel_matches_sequential(
            &format!("{name}/so-noopt/bernoulli0.3"),
            &trace,
            &OrderedListDetector::with_options(rate, false),
            &rate,
        );
    }
}

#[test]
fn never_sampler_still_matches_exactly() {
    for (name, trace) in workload_matrix(200, &[3]) {
        assert_parallel_matches_sequential(
            &format!("{name}/su/never"),
            &trace,
            &FreshnessDetector::new(NeverSampler::new()),
            &NeverSampler::new(),
        );
        assert_parallel_matches_sequential(
            &format!("{name}/so/never"),
            &trace,
            &OrderedListDetector::new(NeverSampler::new()),
            &NeverSampler::new(),
        );
    }
}

#[test]
fn edge_shapes_match_empty_single_event_and_fewer_vars_than_jobs() {
    // Empty trace: no segments beyond the mandatory first, no reports.
    let empty = TraceBuilder::new().build();
    assert_parallel_matches_sequential(
        "empty/djit",
        &empty,
        &DjitDetector::new(AlwaysSampler::new()),
        &AlwaysSampler::new(),
    );

    // Single event; single var — jobs 2 and 3 leave workers idle.
    let mut b = TraceBuilder::new();
    let x = b.var("x");
    b.write(0, x);
    let single = b.build();
    assert_parallel_matches_sequential(
        "single/so",
        &single,
        &OrderedListDetector::new(AlwaysSampler::new()),
        &AlwaysSampler::new(),
    );

    // One shared var, racing writes: every report comes from one worker.
    let mut b = TraceBuilder::new();
    let x = b.var("x");
    let l = b.lock("l");
    b.acquire(0, l).write(0, x).release(0, l);
    b.write(1, x);
    b.write(2, x);
    let racy = b.build();
    assert_parallel_matches_sequential(
        "one-var-racy/su",
        &racy,
        &FreshnessDetector::new(AlwaysSampler::new()),
        &AlwaysSampler::new(),
    );
}

#[test]
fn fuel_traces_match_including_forks_and_joins() {
    let fuels: [&[(u8, u8, u8)]; 3] = [
        &[(0, 0, 0), (1, 0, 1), (2, 1, 0), (0, 1, 1), (3, 0, 2)],
        &[
            (1, 1, 1),
            (1, 1, 1),
            (0, 0, 0),
            (2, 0, 3),
            (4, 2, 1),
            (0, 3, 0),
        ],
        &[
            (5, 0, 0),
            (0, 1, 4),
            (3, 2, 2),
            (1, 0, 5),
            (2, 1, 3),
            (4, 3, 1),
            (0, 2, 0),
        ],
    ];
    for (i, fuel) in fuels.iter().enumerate() {
        let trace = trace_from_fuel(fuel, 6, 4, 6);
        assert_parallel_matches_sequential(
            &format!("fuel{i}/djit"),
            &trace,
            &DjitDetector::new(BernoulliSampler::new(0.5, 9)),
            &BernoulliSampler::new(0.5, 9),
        );
        assert_parallel_matches_sequential(
            &format!("fuel{i}/so"),
            &trace,
            &OrderedListDetector::new(BernoulliSampler::new(0.5, 9)),
            &BernoulliSampler::new(0.5, 9),
        );
    }
}

#[test]
fn discipline_violations_error_identically_to_the_sequential_path() {
    // A release without a matching acquire: the sequential path rejects
    // it through `Validated`; the parallel coordinator must produce the
    // same error even though the events live in different segments.
    let mut b = TraceBuilder::new();
    let x = b.var("x");
    let l = b.lock("l");
    b.acquire(0, l).write(0, x).release(0, l);
    b.release(1, l);
    b.write(1, x);
    let trace = b.build();

    let sequential_err = DjitDetector::new(AlwaysSampler::new())
        .run_source(&mut Validated::new(trace.source()))
        .expect_err("double release must be rejected");

    for events_per_segment in [1, 2, 16] {
        let bytes = v2_bytes(&trace, events_per_segment);
        for jobs in [1, 2] {
            let mut file = SegmentedTraceFile::open(Cursor::new(bytes.as_slice())).unwrap();
            let err = analyze_segments(
                &mut file,
                &DjitDetector::new(AlwaysSampler::new()),
                &AlwaysSampler::new(),
                jobs,
            )
            .expect_err("parallel path must reject the same trace");
            assert!(matches!(err, SourceError::Discipline(_)), "{err}");
            assert_eq!(
                err.to_string(),
                sequential_err.to_string(),
                "seg={events_per_segment} jobs={jobs}"
            );
        }
    }
}

#[test]
fn corrupt_segment_bytes_are_a_clean_error() {
    let mut b = TraceBuilder::new();
    let x = b.var("x");
    for t in 0..3 {
        b.write(t, x);
    }
    let trace = b.build();
    let bytes = v2_bytes(&trace, 1);

    // Flip one byte inside the second segment's payload; the checksum
    // catches it no matter what the flip decodes to.
    let file = SegmentedTraceFile::open(Cursor::new(bytes.as_slice())).unwrap();
    let meta = file.meta(1).clone();
    drop(file);
    let mut corrupt = bytes.clone();
    corrupt[meta.offset as usize + meta.byte_len as usize / 2] ^= 0x41;

    let mut file = SegmentedTraceFile::open(Cursor::new(corrupt.as_slice()))
        .expect("the footer is intact, so the file still opens");
    let err = analyze_segments(
        &mut file,
        &DjitDetector::new(AlwaysSampler::new()),
        &AlwaysSampler::new(),
        2,
    )
    .expect_err("corrupt segment must fail analysis");
    assert!(matches!(err, SourceError::Binary(_)), "{err}");
    assert!(err.to_string().contains("checksum"), "{err}");
}

/// A pathological source whose name table aliases every variable to the
/// same display name — each new variable re-defines `"x"`, so the
/// second segment's delta collides with the first's.
struct AliasedVarNames {
    events: Vec<freshtrack_trace::Event>,
    pos: usize,
    vars: usize,
}

impl EventSource for AliasedVarNames {
    fn next_event(&mut self) -> Result<Option<freshtrack_trace::Event>, SourceError> {
        let event = self.events.get(self.pos).copied();
        if let Some(event) = event {
            self.pos += 1;
            if let freshtrack_trace::EventKind::Read(v) | freshtrack_trace::EventKind::Write(v) =
                event.kind
            {
                self.vars = self.vars.max(v.index() + 1);
            }
        }
        Ok(event)
    }

    fn declared_threads(&self) -> u32 {
        0
    }

    fn observed_threads(&self) -> u32 {
        self.events
            .iter()
            .take(self.pos)
            .map(|e| e.tid.index() as u32 + 1)
            .max()
            .unwrap_or(0)
    }

    fn lock_count(&self) -> usize {
        0
    }

    fn var_count(&self) -> usize {
        self.vars
    }

    fn lock_name(&self, _index: usize) -> &str {
        unreachable!("the aliased source defines no locks")
    }

    fn var_name(&self, _index: usize) -> &str {
        "x"
    }
}

#[test]
fn duplicate_names_across_segments_are_rejected() {
    use freshtrack_trace::{Event, EventKind, ThreadId, VarId};
    let mut source = AliasedVarNames {
        events: vec![
            Event {
                tid: ThreadId::new(0),
                kind: EventKind::Write(VarId::new(0)),
            },
            Event {
                tid: ThreadId::new(0),
                kind: EventKind::Write(VarId::new(1)),
            },
        ],
        pos: 0,
        vars: 0,
    };
    let mut bytes = Vec::new();
    write_source_binary_v2(
        &mut source,
        &mut bytes,
        &SegmentOptions {
            events_per_segment: 1,
        },
    )
    .expect("the writer serializes whatever names the source reports");

    let mut file = SegmentedTraceFile::open(Cursor::new(bytes.as_slice())).unwrap();
    let err = analyze_segments(
        &mut file,
        &DjitDetector::new(AlwaysSampler::new()),
        &AlwaysSampler::new(),
        2,
    )
    .expect_err("cross-segment duplicate definition must be rejected");
    assert!(
        err.to_string()
            .contains("duplicate definition of var \"x\""),
        "{err}"
    );
}
