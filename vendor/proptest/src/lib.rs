//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this workspace
//! vendors the subset of proptest it actually uses:
//!
//! * the [`Strategy`](strategy::Strategy) trait with `prop_map` and
//!   `boxed`;
//! * strategies for integer/float ranges, tuples, `any`, `Just`,
//!   `prop::collection::vec`, and [`prop_oneof!`] unions;
//! * the [`proptest!`] test macro with `#![proptest_config(..)]`,
//!   [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
//!   [`prop_assume!`].
//!
//! Differences from real proptest: cases are generated from a
//! deterministic per-test RNG stream (seeded from the test name and case
//! index, so failures reproduce across runs), there is **no shrinking**
//! (a failure reports the case index and message only), and rejected
//! cases (`prop_assume!`) are simply skipped. Set `PROPTEST_CASES` to
//! override the case count globally.

#![forbid(unsafe_code)]

use std::fmt;

/// Configuration for a [`proptest!`] block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The effective case count: `PROPTEST_CASES` env override, else the
    /// configured value.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` and should be skipped.
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection (assumption not met) with the given message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "case rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "{m}"),
        }
    }
}

/// Deterministic per-test random source (SplitMix64 stream).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A stream derived from the test name and case index, so every run
    /// of the suite generates the same cases.
    pub fn deterministic(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ ((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::TestRng;

    /// A generator of values for property tests.
    ///
    /// Object-safe core: `generate`. Combinators are `Self: Sized`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value from the random stream.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among type-erased alternatives ([`prop_oneof!`]).
    ///
    /// [`prop_oneof!`]: crate::prop_oneof
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// A union of the given (non-empty) alternatives.
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                    lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident/$i:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A/0)
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
        (A/0, B/1, C/2, D/3, E/4)
    }
}

pub mod arbitrary {
    //! The [`any`] strategy for types with a canonical full-domain
    //! distribution.

    use super::strategy::Strategy;
    use super::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" distribution.
    pub trait Arbitrary {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite values only, spread over a wide but tame magnitude.
            (rng.unit_f64() - 0.5) * 2e12
        }
    }

    /// The full-domain strategy for `T` (see [`any`]).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Generates any value of `T` (integers: uniform over the domain).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::TestRng;

    /// A size specification for [`vec()`]: a fixed size or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end() + 1,
            }
        }
    }

    /// Strategy for vectors of values from `elem` with length in `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `elem` and whose length
    /// is drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min
                + if span == 0 {
                    0
                } else {
                    rng.below(span) as usize
                };
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod prop {
    //! The `prop::` namespace familiar from real proptest.

    pub use crate::collection;
    pub use crate::strategy;
}

pub mod test_runner {
    //! Re-exports used by `proptest_config`.

    pub use crate::{ProptestConfig as Config, TestCaseError, TestRng};
}

pub mod prelude {
    //! Everything a property test needs in scope.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::collection::SizeRange;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig, TestCaseError,
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)*), left, right
        );
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])+ fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let cases = config.effective_cases();
                let mut passed: u32 = 0;
                for case in 0..cases {
                    let mut __rng = $crate::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest `{}` failed at case {case}/{cases} (no shrinking): {msg}",
                                stringify!($name)
                            );
                        }
                    }
                }
                // Guard against assumptions rejecting everything.
                assert!(
                    cases == 0 || passed > 0,
                    "proptest `{}`: all {cases} cases were rejected by prop_assume!",
                    stringify!($name)
                );
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_streams_repeat() {
        let mut a = crate::TestRng::deterministic("t", 3);
        let mut b = crate::TestRng::deterministic("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..10, y in 2usize..=4, f in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((2..=4).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn oneof_and_map_compose(
            v in prop_oneof![
                (0u32..4).prop_map(|x| x * 2),
                (10u32..12).prop_map(|x| x + 1),
            ],
        ) {
            prop_assert!(matches!(v, 0 | 2 | 4 | 6 | 11 | 12));
        }

        #[test]
        fn assume_skips_cases(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }
}
