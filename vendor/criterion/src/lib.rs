//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this crate vendors
//! the slice of criterion's API the workspace benches use —
//! [`criterion_group!`]/[`criterion_main!`], [`Criterion`] builder knobs,
//! benchmark groups with [`Throughput`], and `Bencher::iter` /
//! `Bencher::iter_batched` — over a deliberately simple measurement
//! loop: per sample, time a batch of iterations and report the minimum
//! and mean per-iteration time (plus throughput when configured). No
//! statistical analysis, outlier detection, or HTML reports.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batches are sized in [`Bencher::iter_batched`]. Only a hint here.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Units for normalized reporting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter rendered after a `/`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    /// Collected per-iteration sample durations.
    sample_times: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, one call per sample.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let warm_deadline = Instant::now() + self.warm_up_time;
        loop {
            black_box(routine());
            if Instant::now() >= warm_deadline {
                break;
            }
        }
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.sample_times.push(start.elapsed());
            if Instant::now() > deadline {
                break;
            }
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from measurement.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let warm_deadline = Instant::now() + self.warm_up_time;
        loop {
            black_box(routine(setup()));
            if Instant::now() >= warm_deadline {
                break;
            }
        }
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.sample_times.push(start.elapsed());
            if Instant::now() > deadline {
                break;
            }
        }
    }
}

/// A named group of related benchmarks sharing a throughput setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used for normalized reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        let mut bencher = self.criterion.bencher();
        f(&mut bencher);
        report(
            &format!("{}/{}", self.name, id),
            &bencher.sample_times,
            self.throughput,
        );
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = self.criterion.bencher();
        f(&mut bencher, input);
        report(
            &format!("{}/{}", self.name, id.id),
            &bencher.sample_times,
            self.throughput,
        );
        self
    }

    /// Ends the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// Anything usable as a benchmark id (`&str`, `String`, [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Renders the id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

/// The benchmark harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(800),
            warm_up_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Sets how many samples to collect per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the measurement-time budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget per benchmark (informational here).
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Applies command-line overrides (no-op; kept for API parity).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = self.bencher();
        f(&mut bencher);
        report(id, &bencher.sample_times, None);
        self
    }

    /// Final summary hook (no-op; kept for API parity).
    pub fn final_summary(&mut self) {}

    fn bencher(&self) -> Bencher {
        Bencher {
            samples: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            sample_times: Vec::new(),
        }
    }
}

fn report(id: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{id:<48} (no samples)");
        return;
    }
    let min = samples.iter().min().copied().unwrap_or_default();
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
            format!("  {:>12.0} elem/s", n as f64 / mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
            format!("  {:>12.0} B/s", n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!(
        "{id:<48} min {min:>12?}  mean {mean:>12?}  ({} samples){rate}",
        samples.len()
    );
}

/// Declares a group of benchmark functions, optionally with a shared
/// config, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default().configure_from_args();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn routines(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(64));
        g.bench_function("iter", |b| b.iter(|| black_box(2u64.pow(10))));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        g.bench_with_input(BenchmarkId::new("param", 3), &3u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
    }

    criterion_group! {
        name = smoke;
        config = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        targets = routines
    }

    #[test]
    fn harness_runs_groups() {
        smoke();
    }
}
