//! Offline stand-in for the `rand` crate (0.8-flavored API subset).
//!
//! The build environment has no crates.io access, so this workspace
//! vendors the small slice of `rand` it actually uses: `StdRng` seeded
//! via [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] /
//! [`Rng::gen_bool`]. The generator is xoshiro256** seeded through
//! SplitMix64 — high quality, deterministic, and dependency-free. Streams
//! do **not** match the real `rand` crate bit-for-bit; everything in this
//! workspace only relies on determinism for a fixed seed, never on a
//! particular stream.

#![forbid(unsafe_code)]

/// Core random-number source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The seed type (fixed-width byte array for `StdRng`).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a single `u64`, expanding it with
    /// SplitMix64 exactly like the real crate does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            for (b, s) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

/// A half-open or inclusive integer/float range that can be sampled
/// uniformly (the `gen_range` argument bound).
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range. Panics if empty.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                // Wrapping arithmetic: `lo as u128` sign-extends for the
                // signed instantiations, so plain subtraction would
                // underflow on e.g. `-5i32..=5`.
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range: {p}"
        );
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256**.
    ///
    /// (The real `StdRng` is ChaCha12; this workspace never relies on the
    /// concrete stream, only on seed-determinism.)
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0, 0, 0, 0] {
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same: Vec<u64> = (0..32)
            .map(|_| StdRng::seed_from_u64(42).gen_range(0..u64::MAX))
            .collect();
        let other: Vec<u64> = (0..32).map(|_| c.gen_range(0..u64::MAX)).collect();
        assert_ne!(same[0], other[1]);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5usize..=9);
            assert!((5..=9).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let s = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&s));
            let n = rng.gen_range(-9i64..-2);
            assert!((-9..-2).contains(&n));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
