//! Offline stand-in for the `parking_lot` crate.
//!
//! Provides [`Mutex`] with `parking_lot`'s ergonomics — `lock()` returns
//! the guard directly, and the lock is not poisoned by panics — backed by
//! `std::sync::Mutex`. Vendored because the build environment has no
//! crates.io access; the workspace only uses the `Mutex` type.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard, TryLockError};

/// A mutual-exclusion lock with `parking_lot` semantics: `lock()` returns
/// the guard directly and panics in a lock-holder never poison the lock.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// RAII guard returned by [`Mutex::lock`]; releases the lock on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: StdMutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Unlike
    /// `std::sync::Mutex`, ignores poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let inner = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard { inner }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(TryLockError::Poisoned(poisoned)) => Some(MutexGuard {
                inner: poisoned.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning.
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(5);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(*m.try_lock().unwrap(), 5);
    }
}
