//! Hunt seeded races in a live multi-threaded database with a sampling
//! detector — the paper's online (ThreadSanitizer) scenario end-to-end.
//!
//! A TPC-C-like workload runs on the in-memory database with a small
//! fraction of accesses bypassing row locks (missing-lock bugs). The SO
//! engine at a 10% sampling rate watches every synchronization event but
//! only a tenth of accesses, and still catches the bugs.
//!
//! Run with: `cargo run --release --example db_race_hunt`

use std::sync::Arc;

use freshtrack::core::OrderedListDetector;
use freshtrack::dbsim::{run_benchmark, DetectorInstrument, RunOptions};
use freshtrack::sampling::BernoulliSampler;
use freshtrack::workloads::benchbase;

fn main() {
    let mut workload = benchbase::by_name("tpcc").expect("tpcc mix exists");
    workload.unprotected_fraction = 0.05; // seed missing-lock bugs

    let options = RunOptions {
        workers: 8,
        txns_per_worker: 400,
        seed: 7,
    };

    println!(
        "running {} on {} workers × {} txns with SO-(10%)…",
        workload.name, options.workers, options.txns_per_worker
    );

    // Detecting a race needs *both* endpoints sampled, so short demo
    // runs use a 10% rate; hour-long runs catch the same bugs at 0.3-3%
    // (see EXPERIMENTS.md on Fig. 6(a)).
    let sampler = BernoulliSampler::new(0.10, options.seed);
    let instrument = Arc::new(DetectorInstrument::new(OrderedListDetector::new(sampler)));
    let stats = run_benchmark(&workload, &options, instrument.clone());

    let instrument = Arc::try_unwrap(instrument).ok().expect("workers joined");
    let (detector, reports) = instrument.finish();
    let c = freshtrack::core::Detector::counters(&detector);

    println!(
        "{} transactions, mean latency {:.1} µs (p95 {} µs)",
        stats.transactions,
        stats.mean_us(),
        stats.percentile_us(95.0)
    );
    println!(
        "events={}  sampled accesses={} ({:.2}%)",
        c.events,
        c.sampled_accesses,
        100.0 * c.sampled_accesses as f64 / c.accesses().max(1) as f64
    );
    println!(
        "sync work: {:.1}% of acquires skipped, {:.2} list entries/acquire, {} deep copies",
        100.0 * c.acquire_skip_ratio(),
        c.traversals_per_acquire(),
        c.deep_copies
    );

    let mut racy_vars: Vec<_> = reports.iter().map(|r| r.var).collect();
    racy_vars.sort_unstable();
    racy_vars.dedup();
    println!(
        "found {} race reports at {} distinct locations",
        reports.len(),
        racy_vars.len()
    );
    for report in reports.iter().take(5) {
        println!("  {report}");
    }
    if reports.len() > 5 {
        println!("  … and {} more", reports.len() - 5);
    }
}
