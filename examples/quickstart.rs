//! Quickstart: build a small execution trace, run the paper's SO engine
//! (Algorithm 4) on it, and inspect the reports and work counters.
//!
//! Run with: `cargo run --example quickstart`

use freshtrack::core::{Detector, OrderedListDetector};
use freshtrack::sampling::AlwaysSampler;
use freshtrack::trace::TraceBuilder;
use freshtrack::workloads::patterns::fig1_trace;

fn main() {
    // --- A hand-built racy execution -------------------------------
    let mut b = TraceBuilder::new();
    let balance = b.var("balance");
    let audit = b.var("audit_log");
    let l = b.lock("account");

    // T0 updates the balance under the account lock…
    b.acquire(0, l).write(0, balance).release(0, l);
    // …T1 does too (no race)…
    b.acquire(1, l)
        .read(1, balance)
        .write(1, balance)
        .release(1, l);
    // …but both append to the audit log without any lock (race!).
    b.write(0, audit);
    b.write(1, audit);
    let trace = b.build();

    let mut detector = OrderedListDetector::new(AlwaysSampler::new());
    let races = detector.run(&trace);

    println!("== hand-built trace ({} events) ==", trace.len());
    for race in &races {
        println!("  {race}");
    }
    assert_eq!(races.len(), 1, "exactly the audit-log race");

    // --- The paper's Fig. 1 execution ------------------------------
    let (fig1, marks) = fig1_trace();
    println!("\n== paper Fig. 1 trace ==");
    println!("{fig1}");
    println!("marked events (sample set S): {marks:?}");

    let mut detector = OrderedListDetector::new(AlwaysSampler::new());
    let races = detector.run(&fig1);
    let c = detector.counters();
    println!(
        "races={}  acquires skipped={}/{}  deep copies={}",
        races.len(),
        c.acquires_skipped,
        c.acquires,
        c.deep_copies
    );
    // All accesses in Fig. 1 target x under the same thread or through
    // the lock ladder — the ladder writes by T0/T1 race at e9.
    assert!(!races.is_empty());
}
