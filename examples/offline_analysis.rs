//! RAPID-style offline analysis: run every engine over one corpus
//! benchmark and compare their work counters side by side.
//!
//! Run with: `cargo run --release --example offline_analysis [benchmark]`

use freshtrack::rapid::report::{pct, Table};
use freshtrack::rapid::{run_engine, EngineConfig, EngineKind};
use freshtrack::workloads::corpus;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "hsqldb".into());
    let bench = corpus::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown benchmark `{name}`; available:");
        for b in corpus::corpus() {
            eprintln!("  {}", b.name);
        }
        std::process::exit(1);
    });

    let trace = bench.trace(0.5, 0);
    let stats = trace.stats();
    println!("benchmark {name}: {stats}");

    let engines = [
        EngineConfig::new(EngineKind::FastTrack, 1.0, 0),
        EngineConfig::new(EngineKind::St, 0.03, 0),
        EngineConfig::new(EngineKind::Sam, 0.03, 0),
        EngineConfig::new(EngineKind::Su, 0.03, 0),
        EngineConfig::new(EngineKind::So, 0.03, 0),
        EngineConfig::new(EngineKind::Su, 1.0, 0),
        EngineConfig::new(EngineKind::So, 1.0, 0),
    ];

    let mut table = Table::new(&[
        "engine",
        "races",
        "racy locs",
        "vc ops",
        "acq skipped",
        "rel work",
        "deep copies",
        "entries",
        "ms",
    ]);
    for config in &engines {
        let run = run_engine(&trace, config);
        let c = &run.counters;
        let rel_work = if matches!(config.kind, EngineKind::So | EngineKind::SoPlain) {
            format!("{} (shallow)", c.shallow_copies)
        } else {
            format!("{}", c.releases_processed)
        };
        table.row_owned(vec![
            run.label.clone(),
            format!("{}", run.reports.len()),
            format!("{}", run.racy_locations()),
            format!("{}", c.vc_ops),
            pct(c.acquire_skip_ratio()),
            rel_work,
            format!("{}", c.deep_copies),
            format!("{}", c.entries_traversed),
            format!("{:.2}", run.elapsed.as_secs_f64() * 1_000.0),
        ]);
    }
    print!("{}", table.render());
    println!();
    println!(
        "note: ST/SAM/SU/SO report identical races for the same sample set \
         (Lemmas 4, 7, 8); they differ only in work performed."
    );
}
