//! Sweep the sampling rate and watch the detection/work trade-off: how
//! many racy locations survive at each rate, and how much timestamping
//! work the SO engine performs.
//!
//! Run with: `cargo run --release --example sampling_sweep`

use freshtrack::rapid::report::{bar, pct, Table};
use freshtrack::rapid::{run_engine, EngineConfig, EngineKind};
use freshtrack::workloads::{generate, WorkloadConfig};

fn main() {
    // A contended, mildly buggy workload.
    let trace = generate(
        &WorkloadConfig::named("sweep")
            .events(60_000)
            .threads(8)
            .locks(12)
            .vars(128)
            .sync_ratio(0.35)
            .unprotected(0.03)
            .hot_fraction(0.3)
            .seed(1),
    );
    println!("trace: {}", trace.stats());

    let ft = run_engine(&trace, &EngineConfig::new(EngineKind::FastTrack, 1.0, 0));
    let ft_locs = ft.racy_locations().max(1);
    println!("FT finds {ft_locs} racy locations\n");

    let mut table = Table::new(&[
        "rate",
        "racy locs",
        "vs FT",
        "acq skipped",
        "entries/acq",
        "deep copies",
        "recall bar",
    ]);
    for &rate in &[0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0] {
        let run = run_engine(&trace, &EngineConfig::new(EngineKind::So, rate, 0));
        let c = &run.counters;
        let recall = run.racy_locations() as f64 / ft_locs as f64;
        table.row_owned(vec![
            format!("{}%", rate * 100.0),
            format!("{}", run.racy_locations()),
            pct(recall),
            pct(c.acquire_skip_ratio()),
            format!("{:.2}", c.traversals_per_acquire()),
            format!("{}", c.deep_copies),
            bar(recall, 20),
        ]);
    }
    print!("{}", table.render());
    println!();
    println!("higher rates find more racy locations but skip less sync work.");
}
