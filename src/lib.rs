//! # freshtrack
//!
//! Efficient timestamping for **sampling-based** happens-before data race
//! detection — a Rust implementation of the PLDI 2025 paper *"Efficient
//! Timestamping for Sampling-Based Race Detection"* (Zhang, Lim,
//! Al Thokair, Mathur, Viswanathan).
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! * [`clock`] — vector clocks, epochs, freshness timestamps, ordered
//!   lists, and lazy-copy shared clocks.
//! * [`trace`] — events, traces, trace I/O and statistics.
//! * [`sampling`] — online samplers that decide which access events belong
//!   to the sample set `S`.
//! * [`core`] — the race detectors: Djit+, FastTrack, and the paper's
//!   three sampling engines (ST / SU / SO), plus metric counters, a
//!   ground-truth happens-before oracle, and the online ingestion
//!   façades (single-mutex and sharded).
//! * [`workloads`] — seeded synthetic workload and trace generators
//!   (benchmark-corpus and database-workload shaped).
//! * [`dbsim`] — a multi-threaded in-memory database used as the online
//!   evaluation substrate (the ThreadSanitizer/MySQL stand-in).
//! * [`rapid`] — the offline analysis runner (the RAPID stand-in).
//!
//! # Quickstart
//!
//! ```
//! use freshtrack::core::{Detector, OrderedListDetector};
//! use freshtrack::sampling::AlwaysSampler;
//! use freshtrack::trace::TraceBuilder;
//!
//! // Two threads race on variable `x` with no common lock.
//! let mut b = TraceBuilder::new();
//! let x = b.var("x");
//! let l = b.lock("l");
//! b.acquire(0, l).write(0, x).release(0, l);
//! b.write(1, x);
//! let trace = b.build();
//!
//! let mut detector = OrderedListDetector::new(AlwaysSampler::new());
//! let races = detector.run(&trace);
//! assert_eq!(races.len(), 1);
//! ```

pub use freshtrack_clock as clock;
pub use freshtrack_core as core;
#[cfg(feature = "online")]
pub use freshtrack_dbsim as dbsim;
#[cfg(feature = "offline")]
pub use freshtrack_rapid as rapid;
pub use freshtrack_sampling as sampling;
pub use freshtrack_trace as trace;
pub use freshtrack_workloads as workloads;
