//! End-to-end integration tests across the whole workspace, through the
//! umbrella crate's public API.

use std::sync::Arc;

use freshtrack::core::{
    Detector, DjitDetector, FastTrackDetector, FreshnessDetector, HbOracle, OrderedListDetector,
};
use freshtrack::dbsim::{run_benchmark, DetectorInstrument, NoInstrument, RunOptions};
use freshtrack::rapid::{run_engine, run_offline, EngineConfig, EngineKind};
use freshtrack::sampling::{AlwaysSampler, BernoulliSampler};
use freshtrack::trace::{read_trace, write_trace};
use freshtrack::workloads::{benchbase, corpus, generate, patterns, Pattern, WorkloadConfig};

#[test]
fn workload_to_engines_to_oracle() {
    // Generate → analyze with every engine → validate against the oracle.
    let trace = generate(
        &WorkloadConfig::named("e2e")
            .events(3_000)
            .threads(5)
            .unprotected(0.05)
            .seed(99),
    );
    assert!(trace.validate().is_ok());

    let sampler = BernoulliSampler::new(0.4, 17);
    let so = OrderedListDetector::new(sampler).run(&trace);
    let su = FreshnessDetector::new(sampler).run(&trace);
    let st = DjitDetector::new(sampler).run(&trace);
    assert_eq!(so, su);
    assert_eq!(so, st);

    let oracle = HbOracle::new(&trace);
    let mask = HbOracle::sample_mask(&trace, sampler);
    let racy = oracle.racy_events(&mask);
    for report in &so {
        assert!(racy.contains(&report.event));
    }
    assert_eq!(so.first().map(|r| r.event), racy.first().copied());
}

#[test]
fn trace_io_round_trip_preserves_analysis() {
    let trace = generate(
        &WorkloadConfig::named("io")
            .events(2_000)
            .unprotected(0.05)
            .seed(3),
    );
    let text = write_trace(&trace);
    let parsed = read_trace(&text).expect("round trip parses");
    assert_eq!(trace.len(), parsed.len());

    // The reader interns ids in first-use order, which may differ from
    // the builder's interning order, so compare by event position.
    let a: Vec<_> = OrderedListDetector::new(AlwaysSampler::new())
        .run(&trace)
        .iter()
        .map(|r| r.event)
        .collect();
    let b: Vec<_> = OrderedListDetector::new(AlwaysSampler::new())
        .run(&parsed)
        .iter()
        .map(|r| r.event)
        .collect();
    assert_eq!(a, b);
}

#[test]
fn fig1_example_runs_through_all_engines() {
    let (trace, marks) = patterns::fig1_trace();
    #[derive(Clone)]
    struct Marked(Vec<usize>);
    impl freshtrack::sampling::Sampler for Marked {
        fn decide(&self, id: freshtrack::trace::EventId, _e: freshtrack::trace::Event) -> bool {
            self.0.contains(&id.index())
        }
        fn nominal_rate(&self) -> f64 {
            f64::NAN
        }
    }
    let mut su = FreshnessDetector::new(Marked(marks.clone()));
    let su_reports = su.run(&trace);
    let mut so = OrderedListDetector::new(Marked(marks));
    let so_reports = so.run(&trace);
    assert_eq!(su_reports, so_reports);
    // Only {e5, e15, e16} are sampled, all by T0: no sampled pair races.
    assert!(su_reports.is_empty());
    // Fig. 2: of T1's four acquires, two (e12, e14) are skipped; T0's
    // four acquires of never-released locks are trivially skipped.
    assert_eq!(su.counters().acquires_skipped, 6);
    assert_eq!(so.counters().acquires_skipped, 6);
}

#[test]
fn online_and_offline_find_the_same_seeded_bug_class() {
    let mut workload = benchbase::by_name("smallbank").unwrap();
    workload.unprotected_fraction = 0.05;
    let options = RunOptions {
        workers: 4,
        txns_per_worker: 150,
        seed: 5,
    };
    let inst = Arc::new(DetectorInstrument::new(FastTrackDetector::new(
        AlwaysSampler::new(),
    )));
    run_benchmark(&workload, &options, inst.clone());
    let (_, reports) = Arc::try_unwrap(inst).ok().unwrap().finish();
    assert!(!reports.is_empty(), "online run must find the seeded races");

    // The offline corpus generator also seeds races at its default rate.
    let bench = corpus::by_name("readerswriters").unwrap();
    let trace = bench.trace(0.3, 1);
    let run = run_engine(&trace, &EngineConfig::new(EngineKind::FastTrack, 1.0, 1));
    assert!(!run.reports.is_empty());
}

#[test]
fn offline_runner_covers_benchmark_engine_product() {
    let benchmarks: Vec<_> = corpus::corpus().into_iter().take(3).collect();
    let engines = [
        EngineConfig::new(EngineKind::Su, 0.03, 0),
        EngineConfig::new(EngineKind::So, 0.03, 0),
        EngineConfig::new(EngineKind::Su, 1.0, 0),
        EngineConfig::new(EngineKind::So, 1.0, 0),
    ];
    let summaries = run_offline(&benchmarks, &engines, 2, 0.1);
    assert_eq!(summaries.len(), 12);
    for s in &summaries {
        assert_eq!(s.runs, 2);
        assert!(s.counters.events > 0);
        // The headline claim: plenty of sync work is skipped.
        assert!(
            s.counters.acquires_skipped > 0,
            "{}/{}",
            s.benchmark,
            s.engine
        );
    }
    // SU and SO report identical race counts per benchmark.
    for bench in &benchmarks {
        let per: Vec<_> = summaries
            .iter()
            .filter(|s| s.benchmark == bench.name && s.engine.contains("(3%)"))
            .map(|s| s.counters.races)
            .collect();
        assert_eq!(per[0], per[1], "{}", bench.name);
    }
}

#[test]
fn every_pattern_flows_through_so() {
    for pattern in [
        Pattern::Mixed,
        Pattern::ProducerConsumer,
        Pattern::Pipeline,
        Pattern::ForkJoin,
        Pattern::BarrierPhases,
        Pattern::LockLadder,
    ] {
        let trace = generate(
            &WorkloadConfig::named("p")
                .events(2_000)
                .threads(4)
                .pattern(pattern)
                .seed(8),
        );
        let sampler = BernoulliSampler::new(0.3, 4);
        let so = OrderedListDetector::new(sampler).run(&trace);
        let su = FreshnessDetector::new(sampler).run(&trace);
        assert_eq!(so, su, "{pattern:?}");
    }
}

#[test]
fn uninstrumented_database_run_is_fast_path() {
    let workload = benchbase::by_name("voter").unwrap();
    let options = RunOptions {
        workers: 2,
        txns_per_worker: 50,
        seed: 0,
    };
    let stats = run_benchmark(&workload, &options, Arc::new(NoInstrument));
    assert_eq!(stats.transactions, 100);
}
